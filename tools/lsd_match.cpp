// lsd_match: command-line schema matcher.
//
// Trains LSD on user-mapped sources read from disk and proposes a 1-1
// mapping for a target source — the full Section 3 pipeline as a tool.
//
// Usage:
//   lsd_match --mediated mediated.dtd
//             --train src1.dtd src1.xml src1.mapping
//             --train src2.dtd src2.xml src2.mapping
//             --target tgt.dtd tgt.xml
//             [--constraints domain.constraints]
//             [--feedback "tag <=> LABEL"]...
//             [--gold tgt.mapping] [--no-xml-learner] [--no-meta]
//             [--no-constraint-handler] [--county-label LABEL]
//             [--threads N]          (0 = all cores, 1 = serial; default 1)
//             [--pred-cache N]       (prediction cache capacity; 0 = off)
//             [--strict | --lenient] (failure policy; default --strict)
//             [--deadline-ms N]      (anytime matching budget)
//             [--save-model FILE]    (persist the trained system)
//             [--load-model FILE]    (skip training; restore a saved model)
//             [--checkpoint DIR]     (checkpoint training progress to DIR)
//             [--resume]             (adopt DIR's checkpoints from a prior run)
//             [--metrics-out FILE]   (write a metrics-registry JSON snapshot)
//             [--trace-out FILE]     (write Chrome trace_event JSON spans)
//             [--report-out FILE]    (write the run report as an artifact)
//
// Failure policy:
//   --strict   (default) any malformed input or degraded run is fatal.
//   --lenient  recovery mode: schemas and listings parse with skip-and-
//              continue recovery (diagnostics on stderr), unreadable
//              training sources are dropped with a warning, and a degraded
//              run (quarantined learners, expired deadlines) still emits
//              its mapping. The run report is printed to stderr; the exit
//              code is nonzero only on total failure — no training source
//              usable, no learner survived, or the target is unreadable.
//
// Exit codes (the chosen path is also printed to stderr as "result: ..."):
//   0  clean run: full-strength mapping emitted.
//   2  degraded-but-matched (--lenient): a mapping was emitted but learners
//      were quarantined, a pass was skipped, or a deadline expired.
//   3  corrupt-artifact-recovered: the --load-model file was missing or
//      failed validation and the mapping came from its last-good backup.
//   1  hard failure: bad usage, unreadable inputs, training/matching
//      failed, or a degraded run under --strict.
//
// File formats:
//   *.dtd         — <!ELEMENT ...> declarations (see xml/dtd_parser.h)
//   *.xml         — a single root element whose children are the data
//                   listings, e.g. <listings><house>...</house>...</listings>
//   *.mapping     — "tag <=> LABEL" lines; '#' comments
//   *.constraints — see constraints/constraint_parser.h
//
// With --gold the tool also scores the proposal (paper metric: % of
// matchable tags correct).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/artifact_io.h"
#include "common/file_util.h"
#include "common/metrics.h"
#include "common/serial.h"
#include "common/strings.h"
#include "common/trace.h"
#include "constraints/constraint_parser.h"
#include "core/lsd_system.h"
#include "eval/metrics.h"
#include "xml/dtd_parser.h"
#include "xml/xml_parser.h"

namespace {

using namespace lsd;

void Usage() {
  std::fprintf(stderr,
               "usage: lsd_match --mediated M.dtd"
               " --train S.dtd S.xml S.mapping [--train ...]"
               " --target T.dtd T.xml [--constraints F]"
               " [--feedback \"tag <=> LABEL\"] [--gold T.mapping]"
               " [--no-xml-learner] [--no-meta] [--no-constraint-handler]"
               " [--county-label LABEL] [--threads N] [--pred-cache N]"
               " [--strict|--lenient] [--deadline-ms N]"
               " [--save-model FILE] [--load-model FILE]"
               " [--checkpoint DIR] [--resume]"
               " [--metrics-out FILE] [--trace-out FILE]"
               " [--report-out FILE]\n");
}

/// Exit codes; see the file header. Every non-usage path prints which one
/// it took so scripts (and humans) need not decode numbers.
enum ExitCode {
  kExitOk = 0,
  kExitHardFailure = 1,
  kExitDegradedButMatched = 2,
  kExitRecoveredFromLastGood = 3,
};

void PrintDiagnostics(const std::string& path,
                      const std::vector<ParseDiagnostic>& diagnostics) {
  for (const ParseDiagnostic& diag : diagnostics) {
    std::fprintf(stderr, "%s: recovered: %s\n", path.c_str(),
                 diag.ToString().c_str());
  }
}

StatusOr<DataSource> LoadSource(const std::string& name,
                                const std::string& dtd_path,
                                const std::string& xml_path, bool lenient) {
  DataSource source;
  source.name = name;
  LSD_ASSIGN_OR_RETURN(std::string dtd_text, ReadFileToString(dtd_path));
  if (lenient) {
    LSD_ASSIGN_OR_RETURN(DtdParseReport dtd_report, ParseDtdLenient(dtd_text));
    PrintDiagnostics(dtd_path, dtd_report.diagnostics);
    source.schema = std::move(dtd_report.dtd);
  } else {
    LSD_ASSIGN_OR_RETURN(source.schema, ParseDtd(dtd_text));
  }
  LSD_ASSIGN_OR_RETURN(std::string xml_text, ReadFileToString(xml_path));
  XmlDocument wrapper;
  if (lenient) {
    LSD_ASSIGN_OR_RETURN(XmlParseReport xml_report, ParseXmlLenient(xml_text));
    PrintDiagnostics(xml_path, xml_report.diagnostics);
    wrapper = std::move(xml_report.document);
  } else {
    LSD_ASSIGN_OR_RETURN(wrapper, ParseXml(xml_text));
  }
  if (wrapper.root.children.empty()) {
    return Status::InvalidArgument(xml_path +
                                   ": the root element must wrap the listings");
  }
  for (XmlNode& listing : wrapper.root.children) {
    source.listings.emplace_back(std::move(listing));
  }
  return source;
}

StatusOr<Mapping> LoadMapping(const std::string& path) {
  LSD_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseMapping(text);
}

int Run(int argc, char** argv) {
  std::string mediated_path;
  struct TrainSpec {
    std::string dtd, xml, mapping;
  };
  std::vector<TrainSpec> train_specs;
  std::string target_dtd, target_xml, constraints_path, gold_path;
  std::vector<std::string> feedback_lines;
  LsdConfig config;
  MatchOptions options;
  bool lenient = false;
  long deadline_ms = -1;
  std::string metrics_out, trace_out, report_out;
  std::string save_model, load_model;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    if (arg == "--mediated") {
      if (!next(&mediated_path)) { Usage(); return kExitHardFailure; }
    } else if (arg == "--train") {
      TrainSpec spec;
      if (!next(&spec.dtd) || !next(&spec.xml) || !next(&spec.mapping)) {
        Usage();
        return kExitHardFailure;
      }
      train_specs.push_back(std::move(spec));
    } else if (arg == "--target") {
      if (!next(&target_dtd) || !next(&target_xml)) { Usage(); return kExitHardFailure; }
    } else if (arg == "--constraints") {
      if (!next(&constraints_path)) { Usage(); return kExitHardFailure; }
    } else if (arg == "--feedback") {
      std::string line;
      if (!next(&line)) { Usage(); return kExitHardFailure; }
      feedback_lines.push_back(std::move(line));
    } else if (arg == "--gold") {
      if (!next(&gold_path)) { Usage(); return kExitHardFailure; }
    } else if (arg == "--no-xml-learner") {
      config.use_xml_learner = false;
    } else if (arg == "--no-meta") {
      options.use_meta_learner = false;
    } else if (arg == "--no-constraint-handler") {
      options.use_constraint_handler = false;
    } else if (arg == "--county-label") {
      if (!next(&config.county_label)) { Usage(); return kExitHardFailure; }
      config.use_county_recognizer = true;
    } else if (arg == "--threads") {
      // 0 = hardware concurrency, 1 = serial; the proposed mapping is
      // bit-identical either way.
      std::string value;
      if (!next(&value)) { Usage(); return kExitHardFailure; }
      StatusOr<size_t> parsed = FieldToSize(value);
      if (!parsed.ok()) {
        std::fprintf(stderr, "--threads expects a non-negative integer, got: %s\n",
                     value.c_str());
        return kExitHardFailure;
      }
      config.num_threads = *parsed;
    } else if (arg == "--pred-cache") {
      // Caching changes only speed: cached output is byte-identical to
      // uncached (the invariant check.sh's cache smoke compares).
      std::string value;
      if (!next(&value)) { Usage(); return kExitHardFailure; }
      StatusOr<size_t> parsed = FieldToSize(value);
      if (!parsed.ok()) {
        std::fprintf(stderr,
                     "--pred-cache expects a non-negative integer, got: %s\n",
                     value.c_str());
        return kExitHardFailure;
      }
      config.pred_cache_entries = *parsed;
    } else if (arg == "--strict") {
      lenient = false;
    } else if (arg == "--lenient") {
      lenient = true;
    } else if (arg == "--deadline-ms") {
      std::string value;
      if (!next(&value)) { Usage(); return kExitHardFailure; }
      StatusOr<int64_t> parsed = FieldToInt64(value);
      if (!parsed.ok() || *parsed < 0) {
        std::fprintf(stderr,
                     "--deadline-ms expects a non-negative integer, got: %s\n",
                     value.c_str());
        return kExitHardFailure;
      }
      deadline_ms = *parsed;
    } else if (arg == "--save-model") {
      if (!next(&save_model)) { Usage(); return kExitHardFailure; }
    } else if (arg == "--load-model") {
      if (!next(&load_model)) { Usage(); return kExitHardFailure; }
    } else if (arg == "--checkpoint") {
      if (!next(&config.checkpoint_dir)) { Usage(); return kExitHardFailure; }
    } else if (arg == "--resume") {
      config.resume_from_checkpoint = true;
    } else if (arg == "--metrics-out") {
      if (!next(&metrics_out)) { Usage(); return kExitHardFailure; }
    } else if (arg == "--trace-out") {
      if (!next(&trace_out)) { Usage(); return kExitHardFailure; }
    } else if (arg == "--report-out") {
      if (!next(&report_out)) { Usage(); return kExitHardFailure; }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage();
      return kExitHardFailure;
    }
  }
  // --load-model replaces training, so --train becomes optional (and
  // ignored, loudly, if given).
  if (mediated_path.empty() || target_dtd.empty() ||
      (train_specs.empty() && load_model.empty())) {
    Usage();
    return kExitHardFailure;
  }
  if (!load_model.empty() && !train_specs.empty()) {
    std::fprintf(stderr,
                 "warning: --train is ignored when --load-model is given\n");
    train_specs.clear();
  }
  // Span recording is opt-in: without --trace-out, TraceSpan construction
  // is a single relaxed load.
  if (!trace_out.empty()) TraceRecorder::Global().Start();

  auto mediated_text = ReadFileToString(mediated_path);
  if (!mediated_text.ok()) {
    std::fprintf(stderr, "%s\n", mediated_text.status().ToString().c_str());
    return kExitHardFailure;
  }
  auto mediated = ParseDtd(*mediated_text);
  if (!mediated.ok()) {
    std::fprintf(stderr, "%s\n", mediated.status().ToString().c_str());
    return kExitHardFailure;
  }

  LsdSystem system(*mediated, config);

  // Training sources must outlive Train(); keep them here. In lenient
  // mode a source that fails to load or register is dropped with a
  // warning — fatal only when nothing is left to train on.
  std::vector<DataSource> train_sources;
  train_sources.reserve(train_specs.size());
  size_t sources_used = 0;
  for (const TrainSpec& spec : train_specs) {
    auto source = LoadSource(spec.dtd, spec.dtd, spec.xml, lenient);
    StatusOr<Mapping> gold =
        source.ok() ? LoadMapping(spec.mapping)
                    : StatusOr<Mapping>(source.status());
    Status status = gold.ok() ? Status::OK() : gold.status();
    if (status.ok()) {
      train_sources.push_back(std::move(*source));
      status = system.AddTrainingSource(train_sources.back(), *gold);
      if (!status.ok()) train_sources.pop_back();
    }
    if (!status.ok()) {
      if (!lenient) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return kExitHardFailure;
      }
      std::fprintf(stderr, "warning: skipping training source %s: %s\n",
                   spec.dtd.c_str(), status.ToString().c_str());
      continue;
    }
    ++sources_used;
  }
  if (load_model.empty() && sources_used == 0) {
    std::fprintf(stderr, "error: no usable training source\n");
    return kExitHardFailure;
  }

  if (!constraints_path.empty()) {
    auto text = ReadFileToString(constraints_path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return kExitHardFailure;
    }
    auto constraints = ParseConstraints(*text);
    if (!constraints.ok()) {
      std::fprintf(stderr, "%s\n", constraints.status().ToString().c_str());
      return kExitHardFailure;
    }
    for (auto& constraint : *constraints) {
      system.AddConstraint(std::move(constraint));
    }
  }

  if (!load_model.empty()) {
    Status loaded = system.LoadModel(load_model);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
      return kExitHardFailure;
    }
    std::fprintf(stderr, "loaded model %s (%zu learners)%s\n",
                 load_model.c_str(), system.LearnerNames().size(),
                 system.loaded_from_last_good()
                     ? " — recovered from last-good backup"
                     : "");
  } else {
    Status status = system.Train();
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return kExitHardFailure;
    }
    std::fprintf(stderr, "trained %zu learners on %zu sources\n",
                 system.LearnerNames().size(), sources_used);
  }
  if (!save_model.empty()) {
    Status saved = system.SaveModel(save_model);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
      return kExitHardFailure;
    }
    std::fprintf(stderr, "saved model to %s\n", save_model.c_str());
  }

  // The target must load in every mode — with no target there is nothing
  // to emit, which is total failure even leniently.
  auto target = LoadSource(target_dtd, target_dtd, target_xml, lenient);
  if (!target.ok()) {
    std::fprintf(stderr, "%s\n", target.status().ToString().c_str());
    return kExitHardFailure;
  }

  std::vector<FeedbackConstraint> feedback;
  for (const std::string& line : feedback_lines) {
    bool must_equal = line.find("!=") == std::string::npos;
    auto parsed = ParseMapping(must_equal
                                   ? line
                                   : ReplaceAll(line, "!=", "<=>"));
    if (!parsed.ok() || parsed->size() != 1) {
      std::fprintf(stderr, "bad --feedback '%s' (want \"tag <=> LABEL\" or "
                           "\"tag != LABEL\")\n",
                   line.c_str());
      return kExitHardFailure;
    }
    const auto& [tag, label] = *parsed->entries().begin();
    feedback.emplace_back(tag, label, must_equal);
  }

  // The deadline clock starts at the matching call, not at process start:
  // slow training should not eat the anytime budget the user gave the
  // match itself.
  if (deadline_ms >= 0) options.deadline = Deadline::AfterMillis(deadline_ms);
  auto result = system.MatchSource(*target, options, feedback);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return kExitHardFailure;
  }
  std::fprintf(stderr, "%s", result->report.ToString().c_str());
  // Observability outputs are written for degraded runs too — those are
  // exactly the runs worth inspecting.
  if (!metrics_out.empty()) {
    Status written = WriteStringToFile(
        metrics_out, MetricsRegistry::Global().Snapshot().ToJson());
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return kExitHardFailure;
    }
  }
  if (!trace_out.empty()) {
    TraceRecorder::Global().Stop();
    Status written = TraceRecorder::Global().WriteChromeJson(trace_out);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return kExitHardFailure;
    }
  }
  if (!report_out.empty()) {
    // The run report as a checksummed artifact: the human rendering plus
    // the metrics snapshot, loadable (and corruption-classified) by
    // ReadArtifact like any model or checkpoint file.
    Artifact artifact;
    artifact.kind = "run-report";
    artifact.sections.push_back({"report", result->report.ToString()});
    artifact.sections.push_back({"metrics", result->report.metrics.ToJson()});
    Status written = WriteArtifact(report_out, artifact);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return kExitHardFailure;
    }
  }

  // A last-good recovery leaves exactly one trace: the recovery note. Any
  // other report entry means the run itself degraded.
  bool recovered = system.loaded_from_last_good();
  bool degraded_beyond_recovery =
      !result->report.incidents.empty() || result->report.deadline_hit ||
      result->report.notes.size() > (recovered ? 1u : 0u);
  if (!lenient && degraded_beyond_recovery) {
    std::fprintf(stderr,
                 "error: degraded run under --strict (re-run with --lenient "
                 "to accept the mapping above)\n");
    std::printf("%s", result->mapping.ToString().c_str());
    std::fprintf(stderr, "result: degraded under --strict (exit 1)\n");
    return kExitHardFailure;
  }

  // Mapping to stdout (machine-readable, same format ParseMapping reads);
  // confidence table to stderr.
  std::printf("%s", result->mapping.ToString().c_str());
  for (size_t t = 0; t < result->tags.size(); ++t) {
    const Prediction& p = result->tag_predictions[t];
    std::fprintf(stderr, "  %-20s -> %-18s confidence %.2f\n",
                 result->tags[t].c_str(),
                 system.labels().NameOf(p.Best()).c_str(),
                 p.scores[static_cast<size_t>(p.Best())]);
  }

  if (!gold_path.empty()) {
    auto gold = LoadMapping(gold_path);
    if (!gold.ok()) {
      std::fprintf(stderr, "%s\n", gold.status().ToString().c_str());
      return kExitHardFailure;
    }
    AccuracyBreakdown score = ScoreMapping(result->mapping, *gold);
    std::fprintf(stderr, "matching accuracy: %.1f%% (%zu/%zu matchable)\n",
                 100.0 * score.accuracy(), score.correct, score.matchable);
  }
  if (recovered) {
    std::fprintf(stderr, "result: recovered from last-good model (exit 3)\n");
    return kExitRecoveredFromLastGood;
  }
  if (degraded_beyond_recovery) {
    std::fprintf(stderr, "result: degraded but matched (exit 2)\n");
    return kExitDegradedButMatched;
  }
  std::fprintf(stderr, "result: ok\n");
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
