// lsd_generate: writes a synthetic evaluation domain to disk in the file
// formats lsd_match consumes — a self-contained schema-matching benchmark
// in the spirit of the public repository the paper's Section 9 announces.
//
// Usage:
//   lsd_generate --domain real-estate-1 --out DIR
//                [--sources 5] [--listings 100] [--seed 7] [--threads N]
//                [--lenient] [--metrics-out FILE] [--trace-out FILE]
//
// --threads parallelizes the per-source file serialization (0 = all
// cores, 1 = serial; default 1). Output files are byte-identical for any
// thread count: generation itself is seeded up front and serialization
// writes into per-source slots.
//
// --lenient tolerates per-source write failures (disk full, permission
// races): a source whose files cannot be written is dropped with a
// warning and the exit code stays zero as long as the mediated schema,
// the constraints, and at least one complete source landed on disk.
//
// Produces, under DIR:
//   mediated.dtd          the mediated schema
//   domain.constraints    the standing domain constraints
//   source-K.dtd          each source's schema
//   source-K.xml          its listings (under a <listings> wrapper)
//   source-K.mapping      its gold 1-1 mapping
//   README.txt            an lsd_match command line to try

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/file_util.h"
#include "common/metrics.h"
#include "common/serial.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "datagen/domains.h"
#include "xml/xml_writer.h"

namespace {

using namespace lsd;

int Run(int argc, char** argv) {
  std::string domain_name = "real-estate-1";
  std::string out_dir;
  size_t sources = 5, listings = 100;
  uint64_t seed = 7;
  size_t threads = 1;
  bool lenient = false;
  std::string metrics_out, trace_out;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--domain") {
      const char* v = next_value();
      if (v == nullptr) return 2;
      domain_name = v;
    } else if (arg == "--out") {
      const char* v = next_value();
      if (v == nullptr) return 2;
      out_dir = v;
    } else if (arg == "--sources") {
      const char* v = next_value();
      if (v == nullptr) return 2;
      StatusOr<size_t> parsed = FieldToSize(v);
      if (!parsed.ok()) {
        std::fprintf(stderr,
                     "--sources expects a non-negative integer, got: %s\n", v);
        return 2;
      }
      sources = *parsed;
    } else if (arg == "--listings") {
      const char* v = next_value();
      if (v == nullptr) return 2;
      StatusOr<size_t> parsed = FieldToSize(v);
      if (!parsed.ok()) {
        std::fprintf(stderr,
                     "--listings expects a non-negative integer, got: %s\n", v);
        return 2;
      }
      listings = *parsed;
    } else if (arg == "--seed") {
      const char* v = next_value();
      if (v == nullptr) return 2;
      StatusOr<size_t> parsed = FieldToSize(v);
      if (!parsed.ok()) {
        std::fprintf(stderr, "--seed expects an unsigned integer, got: %s\n",
                     v);
        return 2;
      }
      seed = static_cast<uint64_t>(*parsed);
    } else if (arg == "--threads") {
      const char* v = next_value();
      if (v == nullptr) return 2;
      StatusOr<size_t> parsed = FieldToSize(v);
      if (!parsed.ok()) {
        std::fprintf(stderr,
                     "--threads expects a non-negative integer, got: %s\n", v);
        return 2;
      }
      threads = *parsed;
    } else if (arg == "--lenient") {
      lenient = true;
    } else if (arg == "--metrics-out") {
      const char* v = next_value();
      if (v == nullptr) return 2;
      metrics_out = v;
    } else if (arg == "--trace-out") {
      const char* v = next_value();
      if (v == nullptr) return 2;
      trace_out = v;
    } else {
      std::fprintf(stderr,
                   "usage: lsd_generate --domain NAME --out DIR"
                   " [--sources N] [--listings N] [--seed N] [--threads N]"
                   " [--lenient] [--metrics-out FILE] [--trace-out FILE]\n");
      return 2;
    }
  }
  if (out_dir.empty()) {
    std::fprintf(stderr, "--out is required\n");
    return 2;
  }
  if (!trace_out.empty()) TraceRecorder::Global().Start();

  auto domain = MakeEvaluationDomain(domain_name, sources, listings, seed);
  if (!domain.ok()) {
    std::fprintf(stderr, "%s\n", domain.status().ToString().c_str());
    return 1;
  }

  auto write = [&](const std::string& name,
                   const std::string& contents) -> bool {
    Status status = WriteStringToFile(out_dir + "/" + name, contents);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return false;
    }
    std::fprintf(stderr, "wrote %s/%s (%zu bytes)\n", out_dir.c_str(),
                 name.c_str(), contents.size());
    return true;
  };

  // The mediated schema and constraints are the benchmark's backbone;
  // losing them is total failure in every mode.
  if (!write("mediated.dtd", domain->mediated.ToString())) return 1;

  std::string constraints_text =
      "# standing domain constraints for " + domain_name + "\n";
  for (const auto& constraint : MakeDomainConstraints(*domain)) {
    std::string line = constraint->ToConfigLine();
    if (!line.empty()) constraints_text += line + "\n";
  }
  if (!write("domain.constraints", constraints_text)) return 1;

  // Serializing a source (DTD + XML + mapping text) is CPU-bound and
  // independent per source; fan it out and write the results in order so
  // the on-disk bytes match the serial run exactly.
  struct SourceFiles {
    std::string dtd, xml, mapping;
  };
  ThreadPool pool(threads);
  auto serialized = pool.ParallelMap<SourceFiles>(
      domain->sources.size(), [&](size_t s) -> StatusOr<SourceFiles> {
        const GeneratedSource& gen = domain->sources[s];
        SourceFiles files;
        files.dtd = gen.source.schema.ToString();
        XmlNode wrapper("listings");
        for (const XmlDocument& listing : gen.source.listings) {
          wrapper.children.push_back(listing.root);
        }
        files.xml = WriteXml(wrapper);
        files.mapping = "# gold mapping for " + gen.source.name + "\n" +
                        gen.gold.ToString();
        return files;
      });
  if (!serialized.ok()) {
    std::fprintf(stderr, "%s\n", serialized.status().ToString().c_str());
    return 1;
  }
  size_t sources_written = 0;
  for (size_t s = 0; s < serialized->size(); ++s) {
    std::string base = "source-" + std::to_string(s);
    bool ok = write(base + ".dtd", (*serialized)[s].dtd) &&
              write(base + ".xml", (*serialized)[s].xml) &&
              write(base + ".mapping", (*serialized)[s].mapping);
    if (ok) {
      ++sources_written;
    } else if (lenient) {
      std::fprintf(stderr, "warning: dropped incomplete source %s\n",
                   base.c_str());
    } else {
      return 1;
    }
  }
  if (sources_written == 0) {
    std::fprintf(stderr, "error: no source written\n");
    return 1;
  }

  std::string readme = StrFormat(
      "Synthetic '%s' schema-matching benchmark (%zu sources, %zu listings "
      "each, seed %llu).\n\nTry:\n  lsd_match --mediated mediated.dtd",
      domain_name.c_str(), sources, listings,
      static_cast<unsigned long long>(seed));
  for (size_t s = 0; s + 2 < domain->sources.size(); ++s) {
    readme += StrFormat(" \\\n    --train source-%zu.dtd source-%zu.xml "
                        "source-%zu.mapping", s, s, s);
  }
  size_t target = domain->sources.size() - 1;
  readme += StrFormat(" \\\n    --target source-%zu.dtd source-%zu.xml"
                      " \\\n    --constraints domain.constraints"
                      " \\\n    --gold source-%zu.mapping\n",
                      target, target, target);
  if (!write("README.txt", readme) && !lenient) return 1;

  if (!metrics_out.empty()) {
    Status written = WriteStringToFile(
        metrics_out, MetricsRegistry::Global().Snapshot().ToJson());
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
  }
  if (!trace_out.empty()) {
    TraceRecorder::Global().Stop();
    Status written = TraceRecorder::Global().WriteChromeJson(trace_out);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
