// Unit tests for the versioned model registry (service/model_registry.h):
//   - monotonic id assignment and candidate registration,
//   - kind validation at AddVersion time,
//   - integrity re-verification on load (tampered bytes -> kDataLoss +
//     quarantine; quarantined versions refused outright),
//   - the candidate/serving/retired/quarantined lifecycle and the
//     serving / last-good pointers,
//   - manifest persistence across reopen (ids never reused) and the
//     corrupt-manifest-is-an-error guarantee.
#include <cstdio>
#include <string>
#include <vector>

#include "common/artifact_io.h"
#include "common/file_util.h"
#include "common/status.h"
#include "gtest/gtest.h"
#include "service/model_registry.h"

namespace lsd {
namespace {

// A fresh registry directory per test. The directory may survive a
// previous run of the same test binary, so stale manifest and version
// files are removed up front.
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/lsd_registry_test_" + name;
  std::remove((dir + "/registry.manifest").c_str());
  for (int id = 1; id <= 64; ++id) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "/v%d.model", id);
    std::remove((dir + buf).c_str());
  }
  return dir;
}

// Writes a minimal framed "model" artifact whose payload is `payload`,
// returning its path. Cheap stand-in for a trained model: the registry
// only validates framing and kind, never learner contents.
std::string WriteFakeModel(const std::string& path,
                           const std::string& payload) {
  Artifact artifact;
  artifact.kind = "model";
  artifact.sections.push_back({"state", payload});
  Status status = WriteArtifact(path, artifact);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return path;
}

TEST(ModelRegistryTest, AddVersionAssignsMonotonicIdsAsCandidates) {
  ModelRegistry registry(FreshDir("monotonic"));
  ASSERT_TRUE(registry.Open().ok());
  std::string src = WriteFakeModel(
      ::testing::TempDir() + "/lsd_registry_src_a.artifact", "alpha");

  StatusOr<uint64_t> v1 = registry.AddVersion(src);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  StatusOr<uint64_t> v2 = registry.AddVersion(src);
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ(*v1, 1u);
  EXPECT_EQ(*v2, 2u);

  StatusOr<ModelVersionInfo> info = registry.Get(*v1);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->status, ModelVersionStatus::kCandidate);
  EXPECT_GT(info->size_bytes, 0u);
  EXPECT_EQ(registry.serving(), 0u);
  EXPECT_EQ(registry.last_good(), 0u);
  EXPECT_EQ(registry.List().size(), 2u);
  std::remove(src.c_str());
}

TEST(ModelRegistryTest, AddVersionRejectsNonModelArtifacts) {
  ModelRegistry registry(FreshDir("kind"));
  ASSERT_TRUE(registry.Open().ok());

  // Structurally valid artifact of the wrong kind.
  std::string wrong_kind = ::testing::TempDir() + "/lsd_registry_wrong.artifact";
  Artifact artifact;
  artifact.kind = "run-report";
  artifact.sections.push_back({"state", "not a model"});
  ASSERT_TRUE(WriteArtifact(wrong_kind, artifact).ok());
  EXPECT_FALSE(registry.AddVersion(wrong_kind).ok());

  // Raw bytes that are not an artifact at all.
  std::string garbage = ::testing::TempDir() + "/lsd_registry_garbage.bin";
  ASSERT_TRUE(WriteStringToFile(garbage, "garbage bytes").ok());
  EXPECT_FALSE(registry.AddVersion(garbage).ok());

  // Missing file.
  EXPECT_FALSE(registry.AddVersion(garbage + ".missing").ok());

  // Failed registrations must not burn version ids.
  std::string good = WriteFakeModel(
      ::testing::TempDir() + "/lsd_registry_good.artifact", "ok");
  StatusOr<uint64_t> id = registry.AddVersion(good);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 1u);
  std::remove(wrong_kind.c_str());
  std::remove(garbage.c_str());
  std::remove(good.c_str());
}

TEST(ModelRegistryTest, VerifiedModelPathReturnsIntactBytes) {
  ModelRegistry registry(FreshDir("verify"));
  ASSERT_TRUE(registry.Open().ok());
  std::string src = WriteFakeModel(
      ::testing::TempDir() + "/lsd_registry_src_v.artifact", "payload-v");
  StatusOr<uint64_t> id = registry.AddVersion(src);
  ASSERT_TRUE(id.ok());

  StatusOr<std::string> path = registry.VerifiedModelPath(*id);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  StatusOr<std::string> stored = ReadFileToString(*path);
  StatusOr<std::string> original = ReadFileToString(src);
  ASSERT_TRUE(stored.ok());
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(*stored, *original);
  std::remove(src.c_str());
}

TEST(ModelRegistryTest, TamperedBytesAreQuarantinedOnLoad) {
  ModelRegistry registry(FreshDir("tamper"));
  ASSERT_TRUE(registry.Open().ok());
  std::string src = WriteFakeModel(
      ::testing::TempDir() + "/lsd_registry_src_t.artifact", "payload-t");
  StatusOr<uint64_t> id = registry.AddVersion(src);
  ASSERT_TRUE(id.ok());

  // Flip a payload byte in the stored copy, keeping the length intact.
  std::string stored_path = registry.dir() + "/v1.model";
  StatusOr<std::string> bytes = ReadFileToString(stored_path);
  ASSERT_TRUE(bytes.ok());
  std::string mangled = *bytes;
  mangled[mangled.size() - 2] ^= 0x40;
  ASSERT_TRUE(WriteStringToFile(stored_path, mangled).ok());

  StatusOr<std::string> path = registry.VerifiedModelPath(*id);
  ASSERT_FALSE(path.ok());
  EXPECT_EQ(path.status().code(), StatusCode::kDataLoss);
  StatusOr<ModelVersionInfo> info = registry.Get(*id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->status, ModelVersionStatus::kQuarantined);

  // Quarantine is sticky: even restoring the bytes does not un-poison the
  // version, and further loads are refused with a distinct code.
  ASSERT_TRUE(WriteStringToFile(stored_path, *bytes).ok());
  StatusOr<std::string> again = registry.VerifiedModelPath(*id);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kFailedPrecondition);
  std::remove(src.c_str());
}

TEST(ModelRegistryTest, ServingLifecycleAndRollbackRepromotion) {
  ModelRegistry registry(FreshDir("lifecycle"));
  ASSERT_TRUE(registry.Open().ok());
  std::string src = WriteFakeModel(
      ::testing::TempDir() + "/lsd_registry_src_l.artifact", "payload-l");
  StatusOr<uint64_t> v1 = registry.AddVersion(src);
  StatusOr<uint64_t> v2 = registry.AddVersion(src);
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());

  ASSERT_TRUE(registry.SetServing(*v1).ok());
  ASSERT_TRUE(registry.MarkLastGood(*v1).ok());
  EXPECT_EQ(registry.serving(), *v1);
  EXPECT_EQ(registry.last_good(), *v1);

  // Promoting v2 retires v1.
  ASSERT_TRUE(registry.SetServing(*v2).ok());
  EXPECT_EQ(registry.serving(), *v2);
  EXPECT_EQ(registry.Get(*v1)->status, ModelVersionStatus::kRetired);
  EXPECT_EQ(registry.Get(*v2)->status, ModelVersionStatus::kServing);

  // Rollback: quarantine v2, re-promote the retired v1.
  ASSERT_TRUE(registry.Quarantine(*v2).ok());
  EXPECT_EQ(registry.serving(), 0u);
  ASSERT_TRUE(registry.SetServing(*v1).ok());
  EXPECT_EQ(registry.serving(), *v1);
  EXPECT_EQ(registry.Get(*v1)->status, ModelVersionStatus::kServing);

  // Quarantine is terminal: no promotion, no last-good, no load.
  EXPECT_FALSE(registry.SetServing(*v2).ok());
  EXPECT_FALSE(registry.MarkLastGood(*v2).ok());
  EXPECT_FALSE(registry.VerifiedModelPath(*v2).ok());
  std::remove(src.c_str());
}

TEST(ModelRegistryTest, QuarantineClearsLastGoodPointer) {
  ModelRegistry registry(FreshDir("lastgood"));
  ASSERT_TRUE(registry.Open().ok());
  std::string src = WriteFakeModel(
      ::testing::TempDir() + "/lsd_registry_src_g.artifact", "payload-g");
  StatusOr<uint64_t> v1 = registry.AddVersion(src);
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(registry.SetServing(*v1).ok());
  ASSERT_TRUE(registry.MarkLastGood(*v1).ok());
  ASSERT_TRUE(registry.Quarantine(*v1).ok());
  EXPECT_EQ(registry.serving(), 0u);
  EXPECT_EQ(registry.last_good(), 0u);
  std::remove(src.c_str());
}

TEST(ModelRegistryTest, ManifestPersistsAcrossReopenAndIdsNeverReused) {
  std::string dir = FreshDir("reopen");
  std::string src = WriteFakeModel(
      ::testing::TempDir() + "/lsd_registry_src_r.artifact", "payload-r");
  {
    ModelRegistry registry(dir);
    ASSERT_TRUE(registry.Open().ok());
    StatusOr<uint64_t> v1 = registry.AddVersion(src);
    StatusOr<uint64_t> v2 = registry.AddVersion(src);
    ASSERT_TRUE(v1.ok());
    ASSERT_TRUE(v2.ok());
    ASSERT_TRUE(registry.SetServing(*v2).ok());
    ASSERT_TRUE(registry.MarkLastGood(*v2).ok());
    ASSERT_TRUE(registry.Quarantine(*v1).ok());
  }
  ModelRegistry reopened(dir);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.serving(), 2u);
  EXPECT_EQ(reopened.last_good(), 2u);
  ASSERT_EQ(reopened.List().size(), 2u);
  EXPECT_EQ(reopened.Get(1)->status, ModelVersionStatus::kQuarantined);
  EXPECT_EQ(reopened.Get(2)->status, ModelVersionStatus::kServing);
  // Integrity metadata survives the reopen: the stored copy still loads.
  EXPECT_TRUE(reopened.VerifiedModelPath(2).ok());
  // Ids continue past the persisted high-water mark — never reused.
  StatusOr<uint64_t> v3 = reopened.AddVersion(src);
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(*v3, 3u);
  std::remove(src.c_str());
}

TEST(ModelRegistryTest, CorruptManifestIsAnErrorNotASilentReset) {
  std::string dir = FreshDir("corrupt");
  std::string src = WriteFakeModel(
      ::testing::TempDir() + "/lsd_registry_src_c.artifact", "payload-c");
  {
    ModelRegistry registry(dir);
    ASSERT_TRUE(registry.Open().ok());
    ASSERT_TRUE(registry.AddVersion(src).ok());
  }
  ModelRegistry corrupted(dir);
  std::string manifest = corrupted.ManifestPath();
  StatusOr<std::string> bytes = ReadFileToString(manifest);
  ASSERT_TRUE(bytes.ok());
  std::string mangled = *bytes;
  mangled[mangled.size() / 2] ^= 0x20;
  ASSERT_TRUE(WriteStringToFile(manifest, mangled).ok());
  EXPECT_FALSE(corrupted.Open().ok());
  std::remove(src.c_str());
}

TEST(ModelRegistryTest, MethodsRequireOpen) {
  ModelRegistry registry(FreshDir("unopened"));
  EXPECT_FALSE(registry.AddVersion("anything").ok());
  EXPECT_FALSE(registry.VerifiedModelPath(1).ok());
  EXPECT_FALSE(registry.SetServing(1).ok());
  EXPECT_FALSE(registry.MarkLastGood(1).ok());
  EXPECT_FALSE(registry.Quarantine(1).ok());
}

TEST(ModelRegistryTest, StatusNamesRoundTrip) {
  for (ModelVersionStatus status :
       {ModelVersionStatus::kCandidate, ModelVersionStatus::kServing,
        ModelVersionStatus::kRetired, ModelVersionStatus::kQuarantined}) {
    StatusOr<ModelVersionStatus> parsed =
        ParseModelVersionStatus(ModelVersionStatusName(status));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, status);
  }
  EXPECT_FALSE(ParseModelVersionStatus("bogus").ok());
}

}  // namespace
}  // namespace lsd
