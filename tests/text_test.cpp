#include <cmath>

#include "gtest/gtest.h"
#include "text/stemmer.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"

namespace lsd {
namespace {

// ---------------------------------------------------------------------------
// Porter stemmer
// ---------------------------------------------------------------------------

struct StemCase {
  const char* input;
  const char* expected;
};

class PorterStemTest : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterStemTest, StemsToExpected) {
  EXPECT_EQ(PorterStem(GetParam().input), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    KnownVectors, PorterStemTest,
    ::testing::Values(
        // Classic vectors from Porter's paper and reference implementation.
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"valency", "valenc"}, StemCase{"hesitancy", "hesit"},
        StemCase{"digitizer", "digit"}, StemCase{"conformably", "conform"},
        StemCase{"radically", "radic"}, StemCase{"differently", "differ"},
        StemCase{"vilely", "vile"}, StemCase{"analogously", "analog"},
        StemCase{"vietnamization", "vietnam"}, StemCase{"predication", "predic"},
        StemCase{"operator", "oper"}, StemCase{"feudalism", "feudal"},
        StemCase{"decisiveness", "decis"}, StemCase{"hopefulness", "hope"},
        StemCase{"callousness", "callous"}, StemCase{"formality", "formal"},
        StemCase{"sensitivity", "sensit"}, StemCase{"sensibility", "sensibl"},
        StemCase{"triplicate", "triplic"}, StemCase{"formative", "form"},
        StemCase{"formalize", "formal"}, StemCase{"electricity", "electr"},
        StemCase{"electrical", "electr"}, StemCase{"hopeful", "hope"},
        StemCase{"goodness", "good"}, StemCase{"revival", "reviv"},
        StemCase{"allowance", "allow"}, StemCase{"inference", "infer"},
        StemCase{"airliner", "airlin"}, StemCase{"gyroscopic", "gyroscop"},
        StemCase{"adjustable", "adjust"}, StemCase{"defensible", "defens"},
        StemCase{"irritant", "irrit"}, StemCase{"replacement", "replac"},
        StemCase{"adjustment", "adjust"}, StemCase{"dependent", "depend"},
        StemCase{"adoption", "adopt"}, StemCase{"homologou", "homolog"},
        StemCase{"communism", "commun"}, StemCase{"activate", "activ"},
        StemCase{"angulariti", "angular"}, StemCase{"homologous", "homolog"},
        StemCase{"effective", "effect"}, StemCase{"bowdlerize", "bowdler"},
        StemCase{"probate", "probat"}, StemCase{"rate", "rate"},
        StemCase{"cease", "ceas"}, StemCase{"controll", "control"},
        StemCase{"roll", "roll"}));

TEST(PorterStemTest, ShortAndNonAlphaUnchanged) {
  EXPECT_EQ(PorterStem("ab"), "ab");
  EXPECT_EQ(PorterStem(""), "");
  EXPECT_EQ(PorterStem("42"), "42");
  EXPECT_EQ(PorterStem("don't"), "don't");
  EXPECT_EQ(PorterStem("UPPER"), "UPPER");  // only lower-case is stemmed
}

TEST(PorterStemTest, PaperSignalWords) {
  // Words the Naive Bayes learner keys on must stem consistently.
  EXPECT_EQ(PorterStem("fantastic"), PorterStem("fantastic"));
  EXPECT_EQ(PorterStem("listings"), PorterStem("listing"));
  EXPECT_EQ(PorterStem("houses"), PorterStem("house"));
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

TEST(TokenizerTest, SplitsPriceLikeThePaper) {
  // The paper's data cleaning splits "$70000" into "$" and "70000".
  TokenizerOptions options;
  options.stem = false;
  EXPECT_EQ(Tokenize("$70000", options),
            (std::vector<std::string>{"$", "70000"}));
}

TEST(TokenizerTest, AbsorbsGroupingCommas) {
  TokenizerOptions options;
  options.stem = false;
  EXPECT_EQ(Tokenize("$250,000", options),
            (std::vector<std::string>{"$", "250000"}));
}

TEST(TokenizerTest, CommaWithoutDigitsIsSeparator) {
  TokenizerOptions options;
  options.stem = false;
  EXPECT_EQ(Tokenize("Miami, FL", options),
            (std::vector<std::string>{"miami", "fl"}));
}

TEST(TokenizerTest, PhoneNumber) {
  TokenizerOptions options;
  options.stem = false;
  EXPECT_EQ(Tokenize("(305) 729 0831", options),
            (std::vector<std::string>{"(", "305", ")", "729", "0831"}));
}

TEST(TokenizerTest, StemsWords) {
  EXPECT_EQ(Tokenize("fantastic houses"),
            (std::vector<std::string>{"fantast", "hous"}));
}

TEST(TokenizerTest, StopwordsDroppedWhenRequested) {
  TokenizerOptions options;
  options.stem = false;
  options.drop_stopwords = true;
  EXPECT_EQ(Tokenize("the house is great", options),
            (std::vector<std::string>{"house", "great"}));
}

TEST(TokenizerTest, SymbolAndNumberSuppression) {
  TokenizerOptions options;
  options.stem = false;
  options.keep_symbols = false;
  options.keep_numbers = false;
  EXPECT_EQ(Tokenize("$70,000 great 42nd", options),
            (std::vector<std::string>{"great", "nd"}));
}

TEST(TokenizerTest, EmptyInput) { EXPECT_TRUE(Tokenize("").empty()); }

TEST(TokenizeNameTest, SplitsHyphensAndUnderscores) {
  TokenizerOptions options;
  options.stem = false;
  EXPECT_EQ(TokenizeName("agent-phone", options),
            (std::vector<std::string>{"agent", "phone"}));
  EXPECT_EQ(TokenizeName("agent_phone", options),
            (std::vector<std::string>{"agent", "phone"}));
}

TEST(TokenizeNameTest, SplitsCamelCase) {
  TokenizerOptions options;
  options.stem = false;
  EXPECT_EQ(TokenizeName("listedPrice", options),
            (std::vector<std::string>{"listed", "price"}));
  EXPECT_EQ(TokenizeName("ListedPrice", options),
            (std::vector<std::string>{"listed", "price"}));
}

TEST(TokenizeNameTest, SplitsLetterDigitBoundaries) {
  TokenizerOptions options;
  options.stem = false;
  EXPECT_EQ(TokenizeName("addr2line", options),
            (std::vector<std::string>{"addr", "2", "line"}));
}

TEST(TokenizeNameTest, PathNames) {
  TokenizerOptions options;
  options.stem = false;
  EXPECT_EQ(TokenizeName("house-listing contact phone", options),
            (std::vector<std::string>{"house", "listing", "contact", "phone"}));
}

// ---------------------------------------------------------------------------
// TF/IDF
// ---------------------------------------------------------------------------

TEST(VocabularyTest, InternsStably) {
  Vocabulary vocab;
  int a = vocab.GetOrAdd("alpha");
  int b = vocab.GetOrAdd("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(vocab.GetOrAdd("alpha"), a);
  EXPECT_EQ(vocab.Find("beta"), b);
  EXPECT_EQ(vocab.Find("gamma"), -1);
  EXPECT_EQ(vocab.TokenOf(a), "alpha");
  EXPECT_EQ(vocab.size(), 2u);
}

TEST(SparseVectorTest, FromPairsMergesAndSorts) {
  SparseVector v = SparseVector::FromPairs({{3, 1.0}, {1, 2.0}, {3, 4.0}});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v.entries()[0].first, 1);
  EXPECT_DOUBLE_EQ(v.entries()[0].second, 2.0);
  EXPECT_DOUBLE_EQ(v.entries()[1].second, 5.0);
}

TEST(SparseVectorTest, DotAndCosine) {
  SparseVector a = SparseVector::FromPairs({{0, 1.0}, {2, 1.0}});
  SparseVector b = SparseVector::FromPairs({{2, 2.0}, {5, 1.0}});
  EXPECT_DOUBLE_EQ(a.Dot(b), 2.0);
  EXPECT_NEAR(a.Cosine(b), 2.0 / (std::sqrt(2.0) * std::sqrt(5.0)), 1e-12);
  SparseVector zero;
  EXPECT_DOUBLE_EQ(a.Cosine(zero), 0.0);
}

TEST(SparseVectorTest, NormalizeMakesUnitNorm) {
  SparseVector v = SparseVector::FromPairs({{0, 3.0}, {1, 4.0}});
  v.Normalize();
  EXPECT_NEAR(v.Norm(), 1.0, 1e-12);
}

TEST(TfIdfTest, IdfOrdersRareAboveCommon) {
  TfIdfModel model;
  model.AddDocument({"common", "rare"});
  model.AddDocument({"common"});
  model.AddDocument({"common"});
  model.Finalize();
  SparseVector v = model.Vectorize({"common", "rare"});
  ASSERT_EQ(v.size(), 2u);
  double common_weight = 0, rare_weight = 0;
  for (const auto& [id, w] : v.entries()) {
    if (model.vocabulary().TokenOf(id) == "common") common_weight = w;
    if (model.vocabulary().TokenOf(id) == "rare") rare_weight = w;
  }
  EXPECT_GT(rare_weight, common_weight);
}

TEST(TfIdfTest, UnknownTokensIgnored) {
  TfIdfModel model;
  model.AddDocument({"a", "b"});
  model.Finalize();
  EXPECT_TRUE(model.Vectorize({"zzz"}).empty());
}

TEST(TfIdfTest, VectorsAreUnitNorm) {
  TfIdfModel model;
  model.AddDocument({"a", "b", "c"});
  model.AddDocument({"a", "d"});
  model.Finalize();
  EXPECT_NEAR(model.Vectorize({"a", "b", "d"}).Norm(), 1.0, 1e-12);
}

TEST(TfIdfTest, IdenticalDocumentsHaveCosineOne) {
  TfIdfModel model;
  model.AddDocument({"x", "y"});
  model.AddDocument({"z"});
  model.Finalize();
  SparseVector a = model.Vectorize({"x", "y"});
  SparseVector b = model.Vectorize({"x", "y"});
  EXPECT_NEAR(a.Dot(b), 1.0, 1e-12);
}

}  // namespace
}  // namespace lsd
