// Unit tests for the bench harness helpers — PercentileMs in particular,
// which every published latency table flows through.

#include <vector>

#include "bench/bench_util.h"
#include "gtest/gtest.h"

namespace lsd {
namespace {

TEST(PercentileMsTest, EmptyVectorReadsZero) {
  EXPECT_EQ(bench::PercentileMs({}, 0.5), 0.0);
}

TEST(PercentileMsTest, SingleElementIsEveryPercentile) {
  std::vector<uint64_t> one = {1500};
  EXPECT_EQ(bench::PercentileMs(one, 0.0), 1.5);
  EXPECT_EQ(bench::PercentileMs(one, 0.5), 1.5);
  EXPECT_EQ(bench::PercentileMs(one, 1.0), 1.5);
}

TEST(PercentileMsTest, NearestRankOverKnownVector) {
  // 1..10 ms as micros.
  std::vector<uint64_t> micros;
  for (uint64_t v = 1; v <= 10; ++v) micros.push_back(v * 1000);
  EXPECT_EQ(bench::PercentileMs(micros, 0.0), 1.0);
  EXPECT_EQ(bench::PercentileMs(micros, 1.0), 10.0);
  // rank = round(0.5 * 9) = 5 (0-indexed) -> 6 ms.
  EXPECT_EQ(bench::PercentileMs(micros, 0.5), 6.0);
  // rank = round(0.95 * 9) = 9 -> 10 ms.
  EXPECT_EQ(bench::PercentileMs(micros, 0.95), 10.0);
  // rank = round(0.25 * 9) = 2 -> 3 ms.
  EXPECT_EQ(bench::PercentileMs(micros, 0.25), 3.0);
}

TEST(PercentileMsTest, OutOfRangePIsClamped) {
  std::vector<uint64_t> micros = {1000, 2000, 3000};
  EXPECT_EQ(bench::PercentileMs(micros, -0.5), 1.0);
  EXPECT_EQ(bench::PercentileMs(micros, 7.0), 3.0);
}

TEST(PercentileMsTest, SubMillisecondValuesKeepPrecision) {
  std::vector<uint64_t> micros = {250, 750};
  EXPECT_EQ(bench::PercentileMs(micros, 0.0), 0.25);
  EXPECT_EQ(bench::PercentileMs(micros, 1.0), 0.75);
}

TEST(IntFlagTest, ParsesPresentFlagAndFallsBack) {
  const char* argv[] = {"bench", "--listings=25"};
  EXPECT_EQ(bench::IntFlag(2, const_cast<char**>(argv), "listings", 60), 25);
  EXPECT_EQ(bench::IntFlag(2, const_cast<char**>(argv), "samples", 3), 3);
}

TEST(BoolFlagTest, DetectsExactFlag) {
  const char* argv[] = {"bench", "--quick"};
  EXPECT_TRUE(bench::BoolFlag(2, const_cast<char**>(argv), "quick"));
  EXPECT_FALSE(bench::BoolFlag(2, const_cast<char**>(argv), "slow"));
}

}  // namespace
}  // namespace lsd
