#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "constraints/astar_searcher.h"
#include "constraints/constraint.h"
#include "constraints/handler.h"
#include "gtest/gtest.h"
#include "schema/extraction.h"
#include "xml/dtd_parser.h"
#include "xml/xml_parser.h"

namespace lsd {
namespace {

// Shared fixture: a small real-estate-like source schema with nesting.
//   listing -> (location, price, contact(name, phone), beds, baths, ad-id)
class ConstraintFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    source_.name = "fixture";
    source_.schema = ParseDtd(R"(
      <!ELEMENT listing (location, price, contact, beds, baths, ad-id)>
      <!ELEMENT location (#PCDATA)>
      <!ELEMENT price (#PCDATA)>
      <!ELEMENT contact (name, phone)>
      <!ELEMENT name (#PCDATA)>
      <!ELEMENT phone (#PCDATA)>
      <!ELEMENT beds (#PCDATA)>
      <!ELEMENT baths (#PCDATA)>
      <!ELEMENT ad-id (#PCDATA)>
    )").value();
    source_.listings.push_back(ParseXml(R"(
      <listing><location>Miami</location><price>$100</price>
        <contact><name>Kate</name><phone>111</phone></contact>
        <beds>3</beds><baths>2</baths><ad-id>A1</ad-id></listing>)").value());
    source_.listings.push_back(ParseXml(R"(
      <listing><location>Boston</location><price>$200</price>
        <contact><name>Kate</name><phone>111</phone></contact>
        <beds>3</beds><baths>1</baths><ad-id>A2</ad-id></listing>)").value());
    columns_ = ExtractColumns(source_).value();
    context_ = std::make_unique<ConstraintContext>(&source_.schema, &columns_);
    labels_ = LabelSpace({"HOUSE", "ADDRESS", "PRICE", "CONTACT", "AGENT-NAME",
                          "AGENT-PHONE", "BEDS", "BATHS"});
  }

  // Builds the gold assignment.
  Assignment GoldAssignment() const {
    Assignment a(context_->tags().size());
    auto set = [&](const char* tag, const char* label) {
      a.labels[static_cast<size_t>(context_->TagIndex(tag))] =
          labels_.IndexOf(label);
    };
    set("listing", "HOUSE");
    set("location", "ADDRESS");
    set("price", "PRICE");
    set("contact", "CONTACT");
    set("name", "AGENT-NAME");
    set("phone", "AGENT-PHONE");
    set("beds", "BEDS");
    set("baths", "BATHS");
    set("ad-id", "OTHER");
    return a;
  }

  DataSource source_;
  std::vector<Column> columns_;
  std::unique_ptr<ConstraintContext> context_;
  LabelSpace labels_;
};

// ---------------------------------------------------------------------------
// ConstraintContext
// ---------------------------------------------------------------------------

TEST_F(ConstraintFixture, TagIndexing) {
  EXPECT_EQ(context_->tags().size(), 9u);
  EXPECT_GE(context_->TagIndex("phone"), 0);
  EXPECT_EQ(context_->TagIndex("zzz"), -1);
}

TEST_F(ConstraintFixture, NestingRelations) {
  int listing = context_->TagIndex("listing");
  int contact = context_->TagIndex("contact");
  int phone = context_->TagIndex("phone");
  int price = context_->TagIndex("price");
  EXPECT_TRUE(context_->IsNestedIn(phone, contact));
  EXPECT_TRUE(context_->IsNestedIn(phone, listing));  // transitive
  EXPECT_TRUE(context_->IsNestedIn(contact, listing));
  EXPECT_FALSE(context_->IsNestedIn(price, contact));
  EXPECT_FALSE(context_->IsNestedIn(contact, phone));  // not symmetric
}

TEST_F(ConstraintFixture, SiblingsAndBetween) {
  int location = context_->TagIndex("location");
  int price = context_->TagIndex("price");
  int beds = context_->TagIndex("beds");
  int baths = context_->TagIndex("baths");
  int phone = context_->TagIndex("phone");
  EXPECT_TRUE(context_->AreSiblings(location, price));
  EXPECT_TRUE(context_->AreSiblings(beds, baths));
  EXPECT_FALSE(context_->AreSiblings(location, phone));
  EXPECT_TRUE(context_->TagsBetween(beds, baths).empty());
  // location .. beds has price and contact between them.
  auto between = context_->TagsBetween(location, beds);
  EXPECT_EQ(between.size(), 2u);
}

TEST_F(ConstraintFixture, TreeDistance) {
  int location = context_->TagIndex("location");
  int price = context_->TagIndex("price");
  int phone = context_->TagIndex("phone");
  int listing = context_->TagIndex("listing");
  EXPECT_EQ(context_->TreeDistance(location, location), 0);
  EXPECT_EQ(context_->TreeDistance(location, price), 2);
  EXPECT_EQ(context_->TreeDistance(location, phone), 3);
  EXPECT_EQ(context_->TreeDistance(listing, phone), 2);
}

TEST_F(ConstraintFixture, ColumnKeyDetection) {
  // ad-id values are unique; name values repeat.
  EXPECT_TRUE(context_->ColumnLooksLikeKey(context_->TagIndex("ad-id")));
  EXPECT_FALSE(context_->ColumnLooksLikeKey(context_->TagIndex("name")));
}

TEST_F(ConstraintFixture, FunctionalDependency) {
  int name = context_->TagIndex("name");
  int phone = context_->TagIndex("phone");
  int baths = context_->TagIndex("baths");
  // (name, name) -> phone holds: Kate always has phone 111.
  EXPECT_TRUE(context_->FunctionalDependencyHolds(name, name, phone));
  // (name, phone) -> baths fails: same pair maps to 2 and 1.
  EXPECT_FALSE(context_->FunctionalDependencyHolds(name, phone, baths));
}

TEST_F(ConstraintFixture, SchemaOnlyContextHasNoData) {
  ConstraintContext schema_only(&source_.schema, nullptr);
  EXPECT_FALSE(schema_only.has_data());
  EXPECT_TRUE(schema_only.ColumnLooksLikeKey(0));  // vacuous
}

// ---------------------------------------------------------------------------
// Individual constraints
// ---------------------------------------------------------------------------

TEST_F(ConstraintFixture, FrequencyAtMostOne) {
  FrequencyConstraint c("PRICE", 0, 1);
  Assignment a = GoldAssignment();
  EXPECT_EQ(c.Cost(a, labels_, *context_), 0.0);
  a.labels[static_cast<size_t>(context_->TagIndex("beds"))] =
      labels_.IndexOf("PRICE");
  EXPECT_EQ(c.Cost(a, labels_, *context_), kInfiniteCost);
}

TEST_F(ConstraintFixture, FrequencyExactlyOnePartialIsLenient) {
  FrequencyConstraint c("PRICE", 1, 1);
  Assignment partial(context_->tags().size());
  // Nothing assigned yet: a completion could still satisfy min=1.
  EXPECT_EQ(c.Cost(partial, labels_, *context_), 0.0);
  // All assigned, none to PRICE: now min is violated.
  Assignment full = GoldAssignment();
  full.labels[static_cast<size_t>(context_->TagIndex("price"))] =
      labels_.IndexOf("BEDS");
  EXPECT_EQ(c.Cost(full, labels_, *context_), kInfiniteCost);
}

TEST_F(ConstraintFixture, NestingRequired) {
  NestingConstraint c("CONTACT", "AGENT-PHONE", /*required=*/true);
  Assignment a = GoldAssignment();
  EXPECT_EQ(c.Cost(a, labels_, *context_), 0.0);
  // Move AGENT-PHONE outside the contact subtree.
  a.labels[static_cast<size_t>(context_->TagIndex("phone"))] =
      labels_.other_index();
  a.labels[static_cast<size_t>(context_->TagIndex("beds"))] =
      labels_.IndexOf("AGENT-PHONE");
  EXPECT_EQ(c.Cost(a, labels_, *context_), kInfiniteCost);
}

TEST_F(ConstraintFixture, NestingForbidden) {
  NestingConstraint c("CONTACT", "PRICE", /*required=*/false);
  Assignment a = GoldAssignment();
  EXPECT_EQ(c.Cost(a, labels_, *context_), 0.0);
  a.labels[static_cast<size_t>(context_->TagIndex("phone"))] =
      labels_.IndexOf("PRICE");
  a.labels[static_cast<size_t>(context_->TagIndex("price"))] =
      labels_.other_index();
  EXPECT_EQ(c.Cost(a, labels_, *context_), kInfiniteCost);
}

TEST_F(ConstraintFixture, NestingVacuousWhenLabelUnmatched) {
  NestingConstraint c("CONTACT", "AGENT-PHONE", /*required=*/true);
  Assignment a = GoldAssignment();
  // Remove CONTACT entirely: constraint is vacuous.
  a.labels[static_cast<size_t>(context_->TagIndex("contact"))] =
      labels_.other_index();
  a.labels[static_cast<size_t>(context_->TagIndex("beds"))] =
      labels_.IndexOf("AGENT-PHONE");  // phone anywhere is fine now
  EXPECT_EQ(c.Cost(a, labels_, *context_), 0.0);
}

TEST_F(ConstraintFixture, ContiguitySiblingsWithOtherBetween) {
  ContiguityConstraint c("BEDS", "BATHS");
  Assignment a = GoldAssignment();
  EXPECT_EQ(c.Cost(a, labels_, *context_), 0.0);
  // Non-siblings: BATHS deep inside contact.
  a.labels[static_cast<size_t>(context_->TagIndex("baths"))] =
      labels_.other_index();
  a.labels[static_cast<size_t>(context_->TagIndex("phone"))] =
      labels_.IndexOf("BATHS");
  EXPECT_EQ(c.Cost(a, labels_, *context_), kInfiniteCost);
}

TEST_F(ConstraintFixture, ContiguityRejectsNonOtherBetween) {
  ContiguityConstraint c("ADDRESS", "BEDS");
  Assignment a = GoldAssignment();
  // location(ADDRESS) .. beds(BEDS) have price and contact between, which
  // are labeled PRICE and CONTACT — not OTHER.
  EXPECT_EQ(c.Cost(a, labels_, *context_), kInfiniteCost);
  // Relabel the two in-between tags as OTHER: now satisfied.
  a.labels[static_cast<size_t>(context_->TagIndex("price"))] =
      labels_.other_index();
  a.labels[static_cast<size_t>(context_->TagIndex("contact"))] =
      labels_.other_index();
  EXPECT_EQ(c.Cost(a, labels_, *context_), 0.0);
}

TEST_F(ConstraintFixture, Exclusivity) {
  ExclusivityConstraint c("BEDS", "BATHS");
  Assignment a = GoldAssignment();
  EXPECT_EQ(c.Cost(a, labels_, *context_), kInfiniteCost);
  a.labels[static_cast<size_t>(context_->TagIndex("baths"))] =
      labels_.other_index();
  EXPECT_EQ(c.Cost(a, labels_, *context_), 0.0);
}

TEST_F(ConstraintFixture, KeyConstraint) {
  KeyConstraint c("HOUSE-ID");
  LabelSpace labels({"HOUSE-ID"});
  Assignment a(context_->tags().size());
  // ad-id is unique: can be HOUSE-ID.
  a.labels[static_cast<size_t>(context_->TagIndex("ad-id"))] =
      labels.IndexOf("HOUSE-ID");
  EXPECT_EQ(c.Cost(a, labels, *context_), 0.0);
  // beds has duplicates: cannot be a key (the paper's num-bedrooms
  // example).
  a.labels[static_cast<size_t>(context_->TagIndex("ad-id"))] =
      Assignment::kUnassigned;
  a.labels[static_cast<size_t>(context_->TagIndex("beds"))] =
      labels.IndexOf("HOUSE-ID");
  EXPECT_EQ(c.Cost(a, labels, *context_), kInfiniteCost);
}

TEST_F(ConstraintFixture, FunctionalDependencyConstraintCost) {
  FunctionalDependencyConstraint c("AGENT-NAME", "AGENT-NAME", "AGENT-PHONE");
  Assignment a = GoldAssignment();
  EXPECT_EQ(c.Cost(a, labels_, *context_), 0.0);
  // Map AGENT-PHONE to baths: (Kate, Kate) -> {2, 1} violates the FD.
  a.labels[static_cast<size_t>(context_->TagIndex("phone"))] =
      labels_.other_index();
  a.labels[static_cast<size_t>(context_->TagIndex("baths"))] =
      labels_.IndexOf("AGENT-PHONE");
  EXPECT_EQ(c.Cost(a, labels_, *context_), kInfiniteCost);
}

TEST_F(ConstraintFixture, CountLimitSoftCost) {
  CountLimitSoftConstraint c("OTHER", 1, 2.0);
  Assignment a(context_->tags().size());
  EXPECT_EQ(c.Cost(a, labels_, *context_), 0.0);
  a.labels[0] = labels_.other_index();
  a.labels[1] = labels_.other_index();
  a.labels[2] = labels_.other_index();
  EXPECT_DOUBLE_EQ(c.Cost(a, labels_, *context_), 4.0);  // 2 extras x 2.0
}

TEST_F(ConstraintFixture, ProximitySoftCost) {
  ProximitySoftConstraint c("AGENT-NAME", "AGENT-PHONE", 1.0);
  Assignment a = GoldAssignment();
  // name and phone are siblings (distance 2): no cost.
  EXPECT_DOUBLE_EQ(c.Cost(a, labels_, *context_), 0.0);
  // Move AGENT-PHONE to beds (distance name..beds = 3): cost 1.
  a.labels[static_cast<size_t>(context_->TagIndex("phone"))] =
      labels_.other_index();
  a.labels[static_cast<size_t>(context_->TagIndex("beds"))] =
      labels_.IndexOf("AGENT-PHONE");
  EXPECT_DOUBLE_EQ(c.Cost(a, labels_, *context_), 1.0);
}

TEST_F(ConstraintFixture, FeedbackConstraints) {
  FeedbackConstraint must("price", "PRICE", /*must_equal=*/true);
  FeedbackConstraint must_not("ad-id", "PRICE", /*must_equal=*/false);
  Assignment a = GoldAssignment();
  EXPECT_EQ(must.Cost(a, labels_, *context_), 0.0);
  EXPECT_EQ(must_not.Cost(a, labels_, *context_), 0.0);
  a.labels[static_cast<size_t>(context_->TagIndex("price"))] =
      labels_.IndexOf("BEDS");
  EXPECT_EQ(must.Cost(a, labels_, *context_), kInfiniteCost);
  a.labels[static_cast<size_t>(context_->TagIndex("ad-id"))] =
      labels_.IndexOf("PRICE");
  EXPECT_EQ(must_not.Cost(a, labels_, *context_), kInfiniteCost);
}

TEST_F(ConstraintFixture, FeedbackUnassignedTagIsFree) {
  FeedbackConstraint must("price", "PRICE", true);
  Assignment partial(context_->tags().size());
  EXPECT_EQ(must.Cost(partial, labels_, *context_), 0.0);
}

TEST_F(ConstraintFixture, ConstraintSetTotalAndFilters) {
  ConstraintSet set;
  set.Add(std::make_unique<FrequencyConstraint>("PRICE", 0, 1));
  set.Add(std::make_unique<CountLimitSoftConstraint>("OTHER", 0, 0.5));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.HardConstraints().size(), 1u);
  EXPECT_EQ(set.SoftConstraints().size(), 1u);
  Assignment a = GoldAssignment();
  // One OTHER assignment -> soft cost 0.5; hard satisfied.
  EXPECT_DOUBLE_EQ(set.TotalCost(a, labels_, *context_), 0.5);
  a.labels[static_cast<size_t>(context_->TagIndex("beds"))] =
      labels_.IndexOf("PRICE");
  EXPECT_EQ(set.TotalCost(a, labels_, *context_), kInfiniteCost);
}

TEST_F(ConstraintFixture, DescribeIsHumanReadable) {
  EXPECT_NE(FrequencyConstraint("PRICE", 1, 1).Describe().find("PRICE"),
            std::string::npos);
  EXPECT_NE(NestingConstraint("A", "B", true).Describe().find("must"),
            std::string::npos);
  EXPECT_NE(FeedbackConstraint("t", "L", false).Describe().find("must not"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// A* searcher + handler
// ---------------------------------------------------------------------------

// Builds per-tag predictions that put `peak` mass on the gold label and
// spread the rest.
std::vector<Prediction> GoldLeaningPredictions(const ConstraintContext& context,
                                               const LabelSpace& labels,
                                               const Assignment& gold,
                                               double peak) {
  std::vector<Prediction> out;
  for (size_t t = 0; t < context.tags().size(); ++t) {
    Prediction p(labels.size());
    double rest = (1.0 - peak) / static_cast<double>(labels.size() - 1);
    for (size_t c = 0; c < labels.size(); ++c) p.scores[c] = rest;
    p.scores[static_cast<size_t>(gold.labels[t])] = peak;
    out.push_back(std::move(p));
  }
  return out;
}

TEST_F(ConstraintFixture, SearchRecoversArgmaxWithoutConstraints) {
  Assignment gold = GoldAssignment();
  auto predictions = GoldLeaningPredictions(*context_, labels_, gold, 0.6);
  AStarSearcher searcher;
  ConstraintSet empty;
  auto result = searcher.Search(predictions, empty, labels_, *context_);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->truncated);
  EXPECT_EQ(result->assignment.labels, gold.labels);
}

TEST_F(ConstraintFixture, SearchRepairsDuplicateLabelConflict) {
  Assignment gold = GoldAssignment();
  auto predictions = GoldLeaningPredictions(*context_, labels_, gold, 0.6);
  // Corrupt: beds' top label is PRICE (0.6) but its second-best is BEDS.
  size_t beds = static_cast<size_t>(context_->TagIndex("beds"));
  predictions[beds].scores.assign(labels_.size(), 0.01);
  predictions[beds].scores[static_cast<size_t>(labels_.IndexOf("PRICE"))] = 0.5;
  predictions[beds].scores[static_cast<size_t>(labels_.IndexOf("BEDS"))] = 0.4;
  predictions[beds].Normalize();

  ConstraintSet constraints;
  for (const std::string& label : labels_.labels()) {
    if (label != "OTHER") {
      constraints.Add(std::make_unique<FrequencyConstraint>(label, 0, 1));
    }
  }
  AStarSearcher searcher;
  auto result = searcher.Search(predictions, constraints, labels_, *context_);
  ASSERT_TRUE(result.ok());
  // price keeps PRICE (it has 0.6), beds must fall back to BEDS.
  EXPECT_EQ(result->assignment.labels[beds], labels_.IndexOf("BEDS"));
  EXPECT_EQ(result->assignment
                .labels[static_cast<size_t>(context_->TagIndex("price"))],
            labels_.IndexOf("PRICE"));
}

TEST_F(ConstraintFixture, SearchOrderPutsStructuredTagsFirst) {
  auto order = AStarSearcher::TagOrder(*context_);
  ASSERT_EQ(order.size(), context_->tags().size());
  // The root (8 descendants) comes first, then contact (2 descendants).
  EXPECT_EQ(context_->tags()[order[0]], "listing");
  EXPECT_EQ(context_->tags()[order[1]], "contact");
}

TEST_F(ConstraintFixture, HandlerAppliesFeedback) {
  Assignment gold = GoldAssignment();
  auto predictions = GoldLeaningPredictions(*context_, labels_, gold, 0.6);
  ConstraintHandler handler;
  std::vector<const Constraint*> no_domain;
  std::vector<FeedbackConstraint> feedback = {
      FeedbackConstraint("beds", "BATHS", /*must_equal=*/true)};
  auto result = handler.ComputeMapping(predictions, no_domain, feedback,
                                       labels_, *context_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->mapping.LabelOrOther("beds"), "BATHS");
}

TEST_F(ConstraintFixture, HandlerWithoutConstraintsIsArgmax) {
  Assignment gold = GoldAssignment();
  auto predictions = GoldLeaningPredictions(*context_, labels_, gold, 0.6);
  ConstraintHandler handler;
  auto result =
      handler.ComputeMapping(predictions, {}, {}, labels_, *context_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->expanded, 0u);
  auto argmax = ArgmaxMapping(predictions, labels_, *context_);
  ASSERT_TRUE(argmax.ok());
  EXPECT_EQ(result->mapping.entries(), argmax->entries());
}

TEST_F(ConstraintFixture, UnsatisfiableConstraintsFallBackToGreedy) {
  Assignment gold = GoldAssignment();
  auto predictions = GoldLeaningPredictions(*context_, labels_, gold, 0.6);
  ConstraintSet constraints;
  // Impossible: at least 2 tags must match PRICE but at most 0 may.
  constraints.Add(std::make_unique<FrequencyConstraint>("PRICE", 2, 0));
  AStarSearcher searcher;
  auto result = searcher.Search(predictions, constraints, labels_, *context_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->truncated);
  EXPECT_TRUE(result->assignment.IsComplete());
}

TEST_F(ConstraintFixture, SearchValidatesShapes) {
  AStarSearcher searcher;
  ConstraintSet empty;
  std::vector<Prediction> too_few(2, Prediction::Uniform(labels_.size()));
  EXPECT_FALSE(searcher.Search(too_few, empty, labels_, *context_).ok());
  std::vector<Prediction> wrong_width(context_->tags().size(),
                                      Prediction::Uniform(2));
  EXPECT_FALSE(searcher.Search(wrong_width, empty, labels_, *context_).ok());
}

TEST_F(ConstraintFixture, BeamAlwaysIncludesOther) {
  // With beam width 1 and a prediction peaked on PRICE everywhere, the
  // frequency constraint forces all but one tag to fall back to OTHER.
  AStarOptions options;
  options.beam_width = 1;
  AStarSearcher searcher(options);
  std::vector<Prediction> predictions;
  for (size_t t = 0; t < context_->tags().size(); ++t) {
    Prediction p(labels_.size());
    p.scores[static_cast<size_t>(labels_.IndexOf("PRICE"))] = 0.9;
    p.Normalize();
    predictions.push_back(std::move(p));
  }
  ConstraintSet constraints;
  constraints.Add(std::make_unique<FrequencyConstraint>("PRICE", 0, 1));
  auto result = searcher.Search(predictions, constraints, labels_, *context_);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->truncated);
  size_t price_count = 0, other_count = 0;
  for (int label : result->assignment.labels) {
    if (label == labels_.IndexOf("PRICE")) ++price_count;
    if (label == labels_.other_index()) ++other_count;
  }
  EXPECT_EQ(price_count, 1u);
  EXPECT_EQ(other_count, context_->tags().size() - 1);
}

// ---------------------------------------------------------------------------
// Incremental evaluation: DeltaCost vs full Cost, exact budget accounting
// ---------------------------------------------------------------------------

TEST_F(ConstraintFixture, DeltaCostMatchesFullCostDifference) {
  // The incremental searcher relies on DeltaCost(tag, label, state) ==
  // Cost(extended) - Cost(state) for every constraint type (0/inf for hard
  // ones). Cross-check the specialized implementations against the full
  // evaluations on randomized partial assignments.
  std::vector<std::unique_ptr<Constraint>> all;
  all.push_back(std::make_unique<FrequencyConstraint>("PRICE", 0, 1));
  all.push_back(std::make_unique<FrequencyConstraint>("HOUSE", 1, 1));
  all.push_back(std::make_unique<NestingConstraint>("HOUSE", "PRICE", true));
  all.push_back(std::make_unique<NestingConstraint>("CONTACT", "PRICE", false));
  all.push_back(std::make_unique<ContiguityConstraint>("BEDS", "BATHS"));
  all.push_back(std::make_unique<ExclusivityConstraint>("PRICE", "BEDS"));
  all.push_back(std::make_unique<KeyConstraint>("PRICE"));
  all.push_back(std::make_unique<FunctionalDependencyConstraint>(
      "AGENT-NAME", "AGENT-NAME", "AGENT-PHONE"));
  all.push_back(std::make_unique<CountLimitSoftConstraint>("OTHER", 1, 0.4));
  all.push_back(
      std::make_unique<ProximitySoftConstraint>("AGENT-NAME", "AGENT-PHONE", 0.02));
  all.push_back(std::make_unique<FeedbackConstraint>("price", "PRICE", true));
  all.push_back(std::make_unique<FeedbackConstraint>("beds", "PRICE", false));

  const size_t n_tags = context_->tags().size();
  const size_t n_labels = labels_.size();
  Rng rng(99);
  size_t checked = 0;
  for (int iteration = 0; iteration < 60; ++iteration) {
    SearchState state(n_tags, n_labels);
    std::vector<size_t> unassigned;
    for (size_t t = 0; t < n_tags; ++t) {
      if (rng.Bernoulli(0.5)) {
        state.Assign(static_cast<int>(t),
                     static_cast<int>(rng.UniformInt(0, static_cast<int64_t>(n_labels) - 1)));
      } else {
        unassigned.push_back(t);
      }
    }
    if (unassigned.empty()) continue;
    size_t tag = unassigned[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(unassigned.size()) - 1))];
    int label =
        static_cast<int>(rng.UniformInt(0, static_cast<int64_t>(n_labels) - 1));
    Assignment extended = state.assignment();
    extended.labels[tag] = label;
    for (const auto& c : all) {
      double before = c->Cost(state.assignment(), labels_, *context_);
      if (before == kInfiniteCost) continue;  // contract: state is feasible
      double after = c->Cost(extended, labels_, *context_);
      double delta = c->DeltaCost(static_cast<int>(tag), label, state, labels_,
                                  *context_);
      ++checked;
      if (after == kInfiniteCost) {
        EXPECT_EQ(delta, kInfiniteCost)
            << c->Describe() << " missed a violation at tag " << tag;
      } else if (c->IsHard()) {
        EXPECT_EQ(delta, 0.0)
            << c->Describe() << " flagged a feasible extension at tag " << tag;
      } else {
        EXPECT_NEAR(delta, after - before, 1e-12)
            << c->Describe() << " soft delta mismatch at tag " << tag;
      }
    }
  }
  EXPECT_GT(checked, 100u);  // the loop actually exercised the contract
}

TEST_F(ConstraintFixture, TruncationReportsExactExpansionBudget) {
  // The budget is exact: a truncated search reports expanded ==
  // max_expansions, never budget+k. Finishing the 9-tag fixture needs at
  // least 9 expansions, so a budget of 5 always truncates.
  Assignment gold = GoldAssignment();
  auto predictions = GoldLeaningPredictions(*context_, labels_, gold, 0.6);
  ConstraintSet constraints;
  constraints.Add(std::make_unique<FrequencyConstraint>("PRICE", 0, 1));
  AStarOptions options;
  options.max_expansions = 5;
  AStarSearcher searcher(options);
  auto result = searcher.Search(predictions, constraints, labels_, *context_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->truncated);
  EXPECT_EQ(result->expanded, 5u);
  EXPECT_TRUE(result->assignment.IsComplete());
}

// ---------------------------------------------------------------------------
// Search optimality and heuristic admissibility vs exhaustive enumeration
// ---------------------------------------------------------------------------

/// Five tags (root, a, b, grp, d) and five labels (R, L1, L2, L3, OTHER):
/// 5^5 = 3125 complete assignments, small enough to enumerate exhaustively
/// against the searcher. The d column is unique per listing (key-like);
/// a and b repeat values.
class SmallSearchFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    source_.name = "small";
    source_.schema = ParseDtd(R"(
      <!ELEMENT root (a, b, grp)>
      <!ELEMENT a (#PCDATA)>
      <!ELEMENT b (#PCDATA)>
      <!ELEMENT grp (d)>
      <!ELEMENT d (#PCDATA)>
    )").value();
    const char* docs[] = {
        R"(<root><a>x</a><b>y</b><grp><d>k1</d></grp></root>)",
        R"(<root><a>x</a><b>y</b><grp><d>k2</d></grp></root>)",
        R"(<root><a>x2</a><b>z</b><grp><d>k3</d></grp></root>)",
    };
    for (const char* doc : docs) {
      source_.listings.push_back(ParseXml(doc).value());
    }
    columns_ = ExtractColumns(source_).value();
    context_ = std::make_unique<ConstraintContext>(&source_.schema, &columns_);
    labels_ = LabelSpace({"R", "L1", "L2", "L3"});
  }

  std::vector<Prediction> RandomPredictions(uint64_t seed) const {
    Rng rng(seed);
    std::vector<Prediction> out;
    for (size_t t = 0; t < context_->tags().size(); ++t) {
      Prediction p(labels_.size());
      for (double& score : p.scores) score = rng.Uniform(0.01, 1.0);
      p.Normalize();
      out.push_back(std::move(p));
    }
    return out;
  }

  /// Two qualitatively different mixes: structural (nesting, frequency,
  /// proximity) and column/feedback (key, FD, exclusivity, contiguity).
  void BuildConstraints(int which, ConstraintSet* set) const {
    for (const char* label : {"R", "L1", "L2", "L3"}) {
      set->Add(std::make_unique<FrequencyConstraint>(label, 0, 1));
    }
    if (which == 0) {
      set->Add(std::make_unique<FrequencyConstraint>("R", 1, 1));
      set->Add(std::make_unique<NestingConstraint>("R", "L1", true));
      set->Add(std::make_unique<NestingConstraint>("L1", "L2", false));
      set->Add(std::make_unique<CountLimitSoftConstraint>("OTHER", 2, 0.4));
      set->Add(std::make_unique<ProximitySoftConstraint>("L1", "L2", 0.05));
    } else {
      set->Add(std::make_unique<KeyConstraint>("L3"));
      set->Add(std::make_unique<FunctionalDependencyConstraint>("L1", "L1", "L2"));
      set->Add(std::make_unique<ExclusivityConstraint>("L2", "L3"));
      set->Add(std::make_unique<ContiguityConstraint>("L1", "L2"));
      set->Add(std::make_unique<FeedbackConstraint>("a", "L2", true));
    }
  }

  double TotalWithProbability(const Assignment& assignment,
                              const std::vector<Prediction>& predictions,
                              const ConstraintSet& constraints,
                              const AStarOptions& options) const {
    double soft = constraints.TotalCost(assignment, labels_, *context_);
    if (soft == kInfiniteCost) return kInfiniteCost;
    double total = soft;
    for (size_t t = 0; t < assignment.labels.size(); ++t) {
      double score = std::max(
          predictions[t].scores[static_cast<size_t>(assignment.labels[t])],
          options.score_floor);
      total += -options.alpha * std::log(score);
    }
    return total;
  }

  /// Minimum-cost completion of `partial` (kUnassigned slots range over
  /// every label) by exhaustive enumeration.
  std::pair<Assignment, double> BestCompletion(
      const Assignment& partial, const std::vector<Prediction>& predictions,
      const ConstraintSet& constraints, const AStarOptions& options) const {
    std::vector<size_t> free_tags;
    for (size_t t = 0; t < partial.labels.size(); ++t) {
      if (partial.labels[t] == Assignment::kUnassigned) free_tags.push_back(t);
    }
    Assignment best(partial.labels.size());
    double best_cost = kInfiniteCost;
    Assignment current = partial;
    std::vector<size_t> digits(free_tags.size(), 0);
    for (;;) {
      for (size_t i = 0; i < free_tags.size(); ++i) {
        current.labels[free_tags[i]] = static_cast<int>(digits[i]);
      }
      double total =
          TotalWithProbability(current, predictions, constraints, options);
      if (total < best_cost) {
        best_cost = total;
        best = current;
      }
      size_t k = 0;
      while (k < digits.size() && ++digits[k] == labels_.size()) {
        digits[k] = 0;
        ++k;
      }
      if (k == digits.size()) break;
    }
    return {best, best_cost};
  }

  DataSource source_;
  std::vector<Column> columns_;
  std::unique_ptr<ConstraintContext> context_;
  LabelSpace labels_;
};

TEST_F(SmallSearchFixture, SearchMatchesExhaustiveEnumeration) {
  // Property: on every (seeded) prediction draw and both constraint mixes,
  // A* returns exactly the assignment and cost the brute-force enumeration
  // of all 5^5 completions finds.
  Assignment empty(context_->tags().size());
  for (int which : {0, 1}) {
    for (uint64_t seed : {11u, 23u, 47u, 101u}) {
      ConstraintSet constraints;
      BuildConstraints(which, &constraints);
      auto predictions = RandomPredictions(seed);
      AStarOptions options;
      options.beam_width = 0;  // consider every label, as the enumeration does
      AStarSearcher searcher(options);
      auto result =
          searcher.Search(predictions, constraints, labels_, *context_);
      ASSERT_TRUE(result.ok());
      auto [best, best_cost] =
          BestCompletion(empty, predictions, constraints, options);
      ASSERT_NE(best_cost, kInfiniteCost);
      ASSERT_FALSE(result->truncated)
          << "constraint mix " << which << " seed " << seed;
      EXPECT_EQ(result->assignment.labels, best.labels)
          << "constraint mix " << which << " seed " << seed;
      EXPECT_NEAR(result->cost, best_cost, 1e-9 * (1.0 + std::abs(best_cost)))
          << "constraint mix " << which << " seed " << seed;
    }
  }
}

TEST_F(SmallSearchFixture, HeuristicNeverOverestimates) {
  // Admissibility along every path the search actually took: for each
  // expanded state, g + h must lower-bound the cost of the best complete
  // assignment extending that state. (If it ever exceeded it, the first
  // goal popped could be suboptimal.)
  for (int which : {0, 1}) {
    ConstraintSet constraints;
    BuildConstraints(which, &constraints);
    auto predictions = RandomPredictions(7);
    AStarOptions options;
    options.beam_width = 0;
    options.record_trace = true;
    AStarSearcher searcher(options);
    auto result = searcher.Search(predictions, constraints, labels_, *context_);
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(result->truncated);
    ASSERT_FALSE(result->trace.empty());
    for (const ExpandedState& state : result->trace) {
      auto [best, best_cost] =
          BestCompletion(state.assignment, predictions, constraints, options);
      if (best_cost == kInfiniteCost) continue;  // dead state: any h is a bound
      EXPECT_LE(state.g + state.h,
                best_cost + 1e-9 * (1.0 + std::abs(best_cost)))
          << "inadmissible h at a state with g=" << state.g;
    }
  }
}

}  // namespace
}  // namespace lsd
