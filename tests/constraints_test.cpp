#include <memory>

#include "constraints/astar_searcher.h"
#include "constraints/constraint.h"
#include "constraints/handler.h"
#include "gtest/gtest.h"
#include "schema/extraction.h"
#include "xml/dtd_parser.h"
#include "xml/xml_parser.h"

namespace lsd {
namespace {

// Shared fixture: a small real-estate-like source schema with nesting.
//   listing -> (location, price, contact(name, phone), beds, baths, ad-id)
class ConstraintFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    source_.name = "fixture";
    source_.schema = ParseDtd(R"(
      <!ELEMENT listing (location, price, contact, beds, baths, ad-id)>
      <!ELEMENT location (#PCDATA)>
      <!ELEMENT price (#PCDATA)>
      <!ELEMENT contact (name, phone)>
      <!ELEMENT name (#PCDATA)>
      <!ELEMENT phone (#PCDATA)>
      <!ELEMENT beds (#PCDATA)>
      <!ELEMENT baths (#PCDATA)>
      <!ELEMENT ad-id (#PCDATA)>
    )").value();
    source_.listings.push_back(ParseXml(R"(
      <listing><location>Miami</location><price>$100</price>
        <contact><name>Kate</name><phone>111</phone></contact>
        <beds>3</beds><baths>2</baths><ad-id>A1</ad-id></listing>)").value());
    source_.listings.push_back(ParseXml(R"(
      <listing><location>Boston</location><price>$200</price>
        <contact><name>Kate</name><phone>111</phone></contact>
        <beds>3</beds><baths>1</baths><ad-id>A2</ad-id></listing>)").value());
    columns_ = ExtractColumns(source_).value();
    context_ = std::make_unique<ConstraintContext>(&source_.schema, &columns_);
    labels_ = LabelSpace({"HOUSE", "ADDRESS", "PRICE", "CONTACT", "AGENT-NAME",
                          "AGENT-PHONE", "BEDS", "BATHS"});
  }

  // Builds the gold assignment.
  Assignment GoldAssignment() const {
    Assignment a(context_->tags().size());
    auto set = [&](const char* tag, const char* label) {
      a.labels[static_cast<size_t>(context_->TagIndex(tag))] =
          labels_.IndexOf(label);
    };
    set("listing", "HOUSE");
    set("location", "ADDRESS");
    set("price", "PRICE");
    set("contact", "CONTACT");
    set("name", "AGENT-NAME");
    set("phone", "AGENT-PHONE");
    set("beds", "BEDS");
    set("baths", "BATHS");
    set("ad-id", "OTHER");
    return a;
  }

  DataSource source_;
  std::vector<Column> columns_;
  std::unique_ptr<ConstraintContext> context_;
  LabelSpace labels_;
};

// ---------------------------------------------------------------------------
// ConstraintContext
// ---------------------------------------------------------------------------

TEST_F(ConstraintFixture, TagIndexing) {
  EXPECT_EQ(context_->tags().size(), 9u);
  EXPECT_GE(context_->TagIndex("phone"), 0);
  EXPECT_EQ(context_->TagIndex("zzz"), -1);
}

TEST_F(ConstraintFixture, NestingRelations) {
  int listing = context_->TagIndex("listing");
  int contact = context_->TagIndex("contact");
  int phone = context_->TagIndex("phone");
  int price = context_->TagIndex("price");
  EXPECT_TRUE(context_->IsNestedIn(phone, contact));
  EXPECT_TRUE(context_->IsNestedIn(phone, listing));  // transitive
  EXPECT_TRUE(context_->IsNestedIn(contact, listing));
  EXPECT_FALSE(context_->IsNestedIn(price, contact));
  EXPECT_FALSE(context_->IsNestedIn(contact, phone));  // not symmetric
}

TEST_F(ConstraintFixture, SiblingsAndBetween) {
  int location = context_->TagIndex("location");
  int price = context_->TagIndex("price");
  int beds = context_->TagIndex("beds");
  int baths = context_->TagIndex("baths");
  int phone = context_->TagIndex("phone");
  EXPECT_TRUE(context_->AreSiblings(location, price));
  EXPECT_TRUE(context_->AreSiblings(beds, baths));
  EXPECT_FALSE(context_->AreSiblings(location, phone));
  EXPECT_TRUE(context_->TagsBetween(beds, baths).empty());
  // location .. beds has price and contact between them.
  auto between = context_->TagsBetween(location, beds);
  EXPECT_EQ(between.size(), 2u);
}

TEST_F(ConstraintFixture, TreeDistance) {
  int location = context_->TagIndex("location");
  int price = context_->TagIndex("price");
  int phone = context_->TagIndex("phone");
  int listing = context_->TagIndex("listing");
  EXPECT_EQ(context_->TreeDistance(location, location), 0);
  EXPECT_EQ(context_->TreeDistance(location, price), 2);
  EXPECT_EQ(context_->TreeDistance(location, phone), 3);
  EXPECT_EQ(context_->TreeDistance(listing, phone), 2);
}

TEST_F(ConstraintFixture, ColumnKeyDetection) {
  // ad-id values are unique; name values repeat.
  EXPECT_TRUE(context_->ColumnLooksLikeKey(context_->TagIndex("ad-id")));
  EXPECT_FALSE(context_->ColumnLooksLikeKey(context_->TagIndex("name")));
}

TEST_F(ConstraintFixture, FunctionalDependency) {
  int name = context_->TagIndex("name");
  int phone = context_->TagIndex("phone");
  int baths = context_->TagIndex("baths");
  // (name, name) -> phone holds: Kate always has phone 111.
  EXPECT_TRUE(context_->FunctionalDependencyHolds(name, name, phone));
  // (name, phone) -> baths fails: same pair maps to 2 and 1.
  EXPECT_FALSE(context_->FunctionalDependencyHolds(name, phone, baths));
}

TEST_F(ConstraintFixture, SchemaOnlyContextHasNoData) {
  ConstraintContext schema_only(&source_.schema, nullptr);
  EXPECT_FALSE(schema_only.has_data());
  EXPECT_TRUE(schema_only.ColumnLooksLikeKey(0));  // vacuous
}

// ---------------------------------------------------------------------------
// Individual constraints
// ---------------------------------------------------------------------------

TEST_F(ConstraintFixture, FrequencyAtMostOne) {
  FrequencyConstraint c("PRICE", 0, 1);
  Assignment a = GoldAssignment();
  EXPECT_EQ(c.Cost(a, labels_, *context_), 0.0);
  a.labels[static_cast<size_t>(context_->TagIndex("beds"))] =
      labels_.IndexOf("PRICE");
  EXPECT_EQ(c.Cost(a, labels_, *context_), kInfiniteCost);
}

TEST_F(ConstraintFixture, FrequencyExactlyOnePartialIsLenient) {
  FrequencyConstraint c("PRICE", 1, 1);
  Assignment partial(context_->tags().size());
  // Nothing assigned yet: a completion could still satisfy min=1.
  EXPECT_EQ(c.Cost(partial, labels_, *context_), 0.0);
  // All assigned, none to PRICE: now min is violated.
  Assignment full = GoldAssignment();
  full.labels[static_cast<size_t>(context_->TagIndex("price"))] =
      labels_.IndexOf("BEDS");
  EXPECT_EQ(c.Cost(full, labels_, *context_), kInfiniteCost);
}

TEST_F(ConstraintFixture, NestingRequired) {
  NestingConstraint c("CONTACT", "AGENT-PHONE", /*required=*/true);
  Assignment a = GoldAssignment();
  EXPECT_EQ(c.Cost(a, labels_, *context_), 0.0);
  // Move AGENT-PHONE outside the contact subtree.
  a.labels[static_cast<size_t>(context_->TagIndex("phone"))] =
      labels_.other_index();
  a.labels[static_cast<size_t>(context_->TagIndex("beds"))] =
      labels_.IndexOf("AGENT-PHONE");
  EXPECT_EQ(c.Cost(a, labels_, *context_), kInfiniteCost);
}

TEST_F(ConstraintFixture, NestingForbidden) {
  NestingConstraint c("CONTACT", "PRICE", /*required=*/false);
  Assignment a = GoldAssignment();
  EXPECT_EQ(c.Cost(a, labels_, *context_), 0.0);
  a.labels[static_cast<size_t>(context_->TagIndex("phone"))] =
      labels_.IndexOf("PRICE");
  a.labels[static_cast<size_t>(context_->TagIndex("price"))] =
      labels_.other_index();
  EXPECT_EQ(c.Cost(a, labels_, *context_), kInfiniteCost);
}

TEST_F(ConstraintFixture, NestingVacuousWhenLabelUnmatched) {
  NestingConstraint c("CONTACT", "AGENT-PHONE", /*required=*/true);
  Assignment a = GoldAssignment();
  // Remove CONTACT entirely: constraint is vacuous.
  a.labels[static_cast<size_t>(context_->TagIndex("contact"))] =
      labels_.other_index();
  a.labels[static_cast<size_t>(context_->TagIndex("beds"))] =
      labels_.IndexOf("AGENT-PHONE");  // phone anywhere is fine now
  EXPECT_EQ(c.Cost(a, labels_, *context_), 0.0);
}

TEST_F(ConstraintFixture, ContiguitySiblingsWithOtherBetween) {
  ContiguityConstraint c("BEDS", "BATHS");
  Assignment a = GoldAssignment();
  EXPECT_EQ(c.Cost(a, labels_, *context_), 0.0);
  // Non-siblings: BATHS deep inside contact.
  a.labels[static_cast<size_t>(context_->TagIndex("baths"))] =
      labels_.other_index();
  a.labels[static_cast<size_t>(context_->TagIndex("phone"))] =
      labels_.IndexOf("BATHS");
  EXPECT_EQ(c.Cost(a, labels_, *context_), kInfiniteCost);
}

TEST_F(ConstraintFixture, ContiguityRejectsNonOtherBetween) {
  ContiguityConstraint c("ADDRESS", "BEDS");
  Assignment a = GoldAssignment();
  // location(ADDRESS) .. beds(BEDS) have price and contact between, which
  // are labeled PRICE and CONTACT — not OTHER.
  EXPECT_EQ(c.Cost(a, labels_, *context_), kInfiniteCost);
  // Relabel the two in-between tags as OTHER: now satisfied.
  a.labels[static_cast<size_t>(context_->TagIndex("price"))] =
      labels_.other_index();
  a.labels[static_cast<size_t>(context_->TagIndex("contact"))] =
      labels_.other_index();
  EXPECT_EQ(c.Cost(a, labels_, *context_), 0.0);
}

TEST_F(ConstraintFixture, Exclusivity) {
  ExclusivityConstraint c("BEDS", "BATHS");
  Assignment a = GoldAssignment();
  EXPECT_EQ(c.Cost(a, labels_, *context_), kInfiniteCost);
  a.labels[static_cast<size_t>(context_->TagIndex("baths"))] =
      labels_.other_index();
  EXPECT_EQ(c.Cost(a, labels_, *context_), 0.0);
}

TEST_F(ConstraintFixture, KeyConstraint) {
  KeyConstraint c("HOUSE-ID");
  LabelSpace labels({"HOUSE-ID"});
  Assignment a(context_->tags().size());
  // ad-id is unique: can be HOUSE-ID.
  a.labels[static_cast<size_t>(context_->TagIndex("ad-id"))] =
      labels.IndexOf("HOUSE-ID");
  EXPECT_EQ(c.Cost(a, labels, *context_), 0.0);
  // beds has duplicates: cannot be a key (the paper's num-bedrooms
  // example).
  a.labels[static_cast<size_t>(context_->TagIndex("ad-id"))] =
      Assignment::kUnassigned;
  a.labels[static_cast<size_t>(context_->TagIndex("beds"))] =
      labels.IndexOf("HOUSE-ID");
  EXPECT_EQ(c.Cost(a, labels, *context_), kInfiniteCost);
}

TEST_F(ConstraintFixture, FunctionalDependencyConstraintCost) {
  FunctionalDependencyConstraint c("AGENT-NAME", "AGENT-NAME", "AGENT-PHONE");
  Assignment a = GoldAssignment();
  EXPECT_EQ(c.Cost(a, labels_, *context_), 0.0);
  // Map AGENT-PHONE to baths: (Kate, Kate) -> {2, 1} violates the FD.
  a.labels[static_cast<size_t>(context_->TagIndex("phone"))] =
      labels_.other_index();
  a.labels[static_cast<size_t>(context_->TagIndex("baths"))] =
      labels_.IndexOf("AGENT-PHONE");
  EXPECT_EQ(c.Cost(a, labels_, *context_), kInfiniteCost);
}

TEST_F(ConstraintFixture, CountLimitSoftCost) {
  CountLimitSoftConstraint c("OTHER", 1, 2.0);
  Assignment a(context_->tags().size());
  EXPECT_EQ(c.Cost(a, labels_, *context_), 0.0);
  a.labels[0] = labels_.other_index();
  a.labels[1] = labels_.other_index();
  a.labels[2] = labels_.other_index();
  EXPECT_DOUBLE_EQ(c.Cost(a, labels_, *context_), 4.0);  // 2 extras x 2.0
}

TEST_F(ConstraintFixture, ProximitySoftCost) {
  ProximitySoftConstraint c("AGENT-NAME", "AGENT-PHONE", 1.0);
  Assignment a = GoldAssignment();
  // name and phone are siblings (distance 2): no cost.
  EXPECT_DOUBLE_EQ(c.Cost(a, labels_, *context_), 0.0);
  // Move AGENT-PHONE to beds (distance name..beds = 3): cost 1.
  a.labels[static_cast<size_t>(context_->TagIndex("phone"))] =
      labels_.other_index();
  a.labels[static_cast<size_t>(context_->TagIndex("beds"))] =
      labels_.IndexOf("AGENT-PHONE");
  EXPECT_DOUBLE_EQ(c.Cost(a, labels_, *context_), 1.0);
}

TEST_F(ConstraintFixture, FeedbackConstraints) {
  FeedbackConstraint must("price", "PRICE", /*must_equal=*/true);
  FeedbackConstraint must_not("ad-id", "PRICE", /*must_equal=*/false);
  Assignment a = GoldAssignment();
  EXPECT_EQ(must.Cost(a, labels_, *context_), 0.0);
  EXPECT_EQ(must_not.Cost(a, labels_, *context_), 0.0);
  a.labels[static_cast<size_t>(context_->TagIndex("price"))] =
      labels_.IndexOf("BEDS");
  EXPECT_EQ(must.Cost(a, labels_, *context_), kInfiniteCost);
  a.labels[static_cast<size_t>(context_->TagIndex("ad-id"))] =
      labels_.IndexOf("PRICE");
  EXPECT_EQ(must_not.Cost(a, labels_, *context_), kInfiniteCost);
}

TEST_F(ConstraintFixture, FeedbackUnassignedTagIsFree) {
  FeedbackConstraint must("price", "PRICE", true);
  Assignment partial(context_->tags().size());
  EXPECT_EQ(must.Cost(partial, labels_, *context_), 0.0);
}

TEST_F(ConstraintFixture, ConstraintSetTotalAndFilters) {
  ConstraintSet set;
  set.Add(std::make_unique<FrequencyConstraint>("PRICE", 0, 1));
  set.Add(std::make_unique<CountLimitSoftConstraint>("OTHER", 0, 0.5));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.HardConstraints().size(), 1u);
  EXPECT_EQ(set.SoftConstraints().size(), 1u);
  Assignment a = GoldAssignment();
  // One OTHER assignment -> soft cost 0.5; hard satisfied.
  EXPECT_DOUBLE_EQ(set.TotalCost(a, labels_, *context_), 0.5);
  a.labels[static_cast<size_t>(context_->TagIndex("beds"))] =
      labels_.IndexOf("PRICE");
  EXPECT_EQ(set.TotalCost(a, labels_, *context_), kInfiniteCost);
}

TEST_F(ConstraintFixture, DescribeIsHumanReadable) {
  EXPECT_NE(FrequencyConstraint("PRICE", 1, 1).Describe().find("PRICE"),
            std::string::npos);
  EXPECT_NE(NestingConstraint("A", "B", true).Describe().find("must"),
            std::string::npos);
  EXPECT_NE(FeedbackConstraint("t", "L", false).Describe().find("must not"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// A* searcher + handler
// ---------------------------------------------------------------------------

// Builds per-tag predictions that put `peak` mass on the gold label and
// spread the rest.
std::vector<Prediction> GoldLeaningPredictions(const ConstraintContext& context,
                                               const LabelSpace& labels,
                                               const Assignment& gold,
                                               double peak) {
  std::vector<Prediction> out;
  for (size_t t = 0; t < context.tags().size(); ++t) {
    Prediction p(labels.size());
    double rest = (1.0 - peak) / static_cast<double>(labels.size() - 1);
    for (size_t c = 0; c < labels.size(); ++c) p.scores[c] = rest;
    p.scores[static_cast<size_t>(gold.labels[t])] = peak;
    out.push_back(std::move(p));
  }
  return out;
}

TEST_F(ConstraintFixture, SearchRecoversArgmaxWithoutConstraints) {
  Assignment gold = GoldAssignment();
  auto predictions = GoldLeaningPredictions(*context_, labels_, gold, 0.6);
  AStarSearcher searcher;
  ConstraintSet empty;
  auto result = searcher.Search(predictions, empty, labels_, *context_);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->truncated);
  EXPECT_EQ(result->assignment.labels, gold.labels);
}

TEST_F(ConstraintFixture, SearchRepairsDuplicateLabelConflict) {
  Assignment gold = GoldAssignment();
  auto predictions = GoldLeaningPredictions(*context_, labels_, gold, 0.6);
  // Corrupt: beds' top label is PRICE (0.6) but its second-best is BEDS.
  size_t beds = static_cast<size_t>(context_->TagIndex("beds"));
  predictions[beds].scores.assign(labels_.size(), 0.01);
  predictions[beds].scores[static_cast<size_t>(labels_.IndexOf("PRICE"))] = 0.5;
  predictions[beds].scores[static_cast<size_t>(labels_.IndexOf("BEDS"))] = 0.4;
  predictions[beds].Normalize();

  ConstraintSet constraints;
  for (const std::string& label : labels_.labels()) {
    if (label != "OTHER") {
      constraints.Add(std::make_unique<FrequencyConstraint>(label, 0, 1));
    }
  }
  AStarSearcher searcher;
  auto result = searcher.Search(predictions, constraints, labels_, *context_);
  ASSERT_TRUE(result.ok());
  // price keeps PRICE (it has 0.6), beds must fall back to BEDS.
  EXPECT_EQ(result->assignment.labels[beds], labels_.IndexOf("BEDS"));
  EXPECT_EQ(result->assignment
                .labels[static_cast<size_t>(context_->TagIndex("price"))],
            labels_.IndexOf("PRICE"));
}

TEST_F(ConstraintFixture, SearchOrderPutsStructuredTagsFirst) {
  auto order = AStarSearcher::TagOrder(*context_);
  ASSERT_EQ(order.size(), context_->tags().size());
  // The root (8 descendants) comes first, then contact (2 descendants).
  EXPECT_EQ(context_->tags()[order[0]], "listing");
  EXPECT_EQ(context_->tags()[order[1]], "contact");
}

TEST_F(ConstraintFixture, HandlerAppliesFeedback) {
  Assignment gold = GoldAssignment();
  auto predictions = GoldLeaningPredictions(*context_, labels_, gold, 0.6);
  ConstraintHandler handler;
  std::vector<const Constraint*> no_domain;
  std::vector<FeedbackConstraint> feedback = {
      FeedbackConstraint("beds", "BATHS", /*must_equal=*/true)};
  auto result = handler.ComputeMapping(predictions, no_domain, feedback,
                                       labels_, *context_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->mapping.LabelOrOther("beds"), "BATHS");
}

TEST_F(ConstraintFixture, HandlerWithoutConstraintsIsArgmax) {
  Assignment gold = GoldAssignment();
  auto predictions = GoldLeaningPredictions(*context_, labels_, gold, 0.6);
  ConstraintHandler handler;
  auto result =
      handler.ComputeMapping(predictions, {}, {}, labels_, *context_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->expanded, 0u);
  auto argmax = ArgmaxMapping(predictions, labels_, *context_);
  ASSERT_TRUE(argmax.ok());
  EXPECT_EQ(result->mapping.entries(), argmax->entries());
}

TEST_F(ConstraintFixture, UnsatisfiableConstraintsFallBackToGreedy) {
  Assignment gold = GoldAssignment();
  auto predictions = GoldLeaningPredictions(*context_, labels_, gold, 0.6);
  ConstraintSet constraints;
  // Impossible: at least 2 tags must match PRICE but at most 0 may.
  constraints.Add(std::make_unique<FrequencyConstraint>("PRICE", 2, 0));
  AStarSearcher searcher;
  auto result = searcher.Search(predictions, constraints, labels_, *context_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->truncated);
  EXPECT_TRUE(result->assignment.IsComplete());
}

TEST_F(ConstraintFixture, SearchValidatesShapes) {
  AStarSearcher searcher;
  ConstraintSet empty;
  std::vector<Prediction> too_few(2, Prediction::Uniform(labels_.size()));
  EXPECT_FALSE(searcher.Search(too_few, empty, labels_, *context_).ok());
  std::vector<Prediction> wrong_width(context_->tags().size(),
                                      Prediction::Uniform(2));
  EXPECT_FALSE(searcher.Search(wrong_width, empty, labels_, *context_).ok());
}

TEST_F(ConstraintFixture, BeamAlwaysIncludesOther) {
  // With beam width 1 and a prediction peaked on PRICE everywhere, the
  // frequency constraint forces all but one tag to fall back to OTHER.
  AStarOptions options;
  options.beam_width = 1;
  AStarSearcher searcher(options);
  std::vector<Prediction> predictions;
  for (size_t t = 0; t < context_->tags().size(); ++t) {
    Prediction p(labels_.size());
    p.scores[static_cast<size_t>(labels_.IndexOf("PRICE"))] = 0.9;
    p.Normalize();
    predictions.push_back(std::move(p));
  }
  ConstraintSet constraints;
  constraints.Add(std::make_unique<FrequencyConstraint>("PRICE", 0, 1));
  auto result = searcher.Search(predictions, constraints, labels_, *context_);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->truncated);
  size_t price_count = 0, other_count = 0;
  for (int label : result->assignment.labels) {
    if (label == labels_.IndexOf("PRICE")) ++price_count;
    if (label == labels_.other_index()) ++other_count;
  }
  EXPECT_EQ(price_count, 1u);
  EXPECT_EQ(other_count, context_->tags().size() - 1);
}

}  // namespace
}  // namespace lsd
