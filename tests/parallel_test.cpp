// Tests for the deterministic parallel runtime: ThreadPool/ParallelFor
// ordering and error propagation, and end-to-end thread-count invariance
// of LsdSystem training and matching (the "bit-identical for any thread
// count" contract of DESIGN.md "Threading model & determinism").

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/lsd_system.h"
#include "datagen/domains.h"
#include "eval/experiment.h"
#include "gtest/gtest.h"

namespace lsd {
namespace {

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_GE(ResolveThreadCount(0), 1u);
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_EQ(ResolveThreadCount(7), 7u);
  // Absurd requests (e.g. a negative CLI value wrapped through size_t)
  // are capped instead of aborting in std::vector::reserve.
  EXPECT_EQ(ResolveThreadCount(static_cast<size_t>(-3)), 256u);
}

TEST(ThreadPoolTest, SizeOnePoolHasNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, ParallelForZeroTasksIsOk) {
  ThreadPool pool(4);
  EXPECT_TRUE(pool.ParallelFor(0, [](size_t) { return Status::OK(); }).ok());
}

TEST(ThreadPoolTest, ParallelForPreservesSlotOrdering) {
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<size_t> out(257, 0);
    Status status = pool.ParallelFor(out.size(), [&](size_t i) {
      out[i] = i * i;
      return Status::OK();
    });
    ASSERT_TRUE(status.ok());
    for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(ThreadPoolTest, ParallelMapPreservesInputOrdering) {
  ThreadPool pool(4);
  auto result = pool.ParallelMap<std::string>(64, [](size_t i) {
    return StatusOr<std::string>("task-" + std::to_string(i));
  });
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 64u);
  for (size_t i = 0; i < result->size(); ++i) {
    EXPECT_EQ((*result)[i], "task-" + std::to_string(i));
  }
}

TEST(ThreadPoolTest, ErrorPropagatesFromWorker) {
  for (size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    Status status = pool.ParallelFor(16, [](size_t i) {
      if (i == 9) return Status::Internal("task 9 failed");
      return Status::OK();
    });
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInternal);
    EXPECT_EQ(status.message(), "task 9 failed");
  }
}

TEST(ThreadPoolTest, SerialPathReportsFirstErrorInIndexOrder) {
  // With one thread the pool is exactly the serial loop: task 3's error
  // wins and task 11 is never reached.
  ThreadPool pool(1);
  std::atomic<bool> reached_11{false};
  Status status = pool.ParallelFor(32, [&](size_t i) {
    if (i == 3) return Status::InvalidArgument("first");
    if (i == 11) reached_11.store(true);
    return Status::OK();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "first");
  EXPECT_FALSE(reached_11.load());
}

TEST(ThreadPoolTest, MultipleFailuresReportLowestIndexedRanError) {
  // When several tasks fail, the pool reports the lowest-indexed failure
  // among tasks that ran — one of the two injected errors, never a
  // fabricated OK.
  for (size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    Status status = pool.ParallelFor(32, [](size_t i) {
      if (i == 3) return Status::InvalidArgument("first");
      if (i == 11) return Status::Internal("second");
      return Status::OK();
    });
    ASSERT_FALSE(status.ok());
    EXPECT_TRUE(status.message() == "first" || status.message() == "second")
        << status.ToString();
  }
}

TEST(ThreadPoolTest, RemainingTasksDrainAfterError) {
  // Task 0 is always the first index claimed; it fails and raises `seen`.
  // Every other started task holds until `seen`, so only tasks already
  // in flight at failure time (< thread count) can execute — the rest
  // must be drained, not run.
  ThreadPool pool(4);
  std::atomic<bool> seen{false};
  std::atomic<int> executed{0};
  Status status = pool.ParallelFor(1000, [&](size_t i) {
    if (i == 0) {
      seen.store(true);
      return Status::Internal("fail fast");
    }
    while (!seen.load()) std::this_thread::yield();
    executed.fetch_add(1);
    return Status::OK();
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "fail fast");
  EXPECT_LT(executed.load(), 100);
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  ThreadPool pool(4);
  std::vector<std::vector<size_t>> out(8);
  Status status = pool.ParallelFor(out.size(), [&](size_t i) {
    out[i].assign(16, 0);
    return pool.ParallelFor(16, [&out, i](size_t j) {
      out[i][j] = i * 100 + j;
      return Status::OK();
    });
  });
  ASSERT_TRUE(status.ok());
  for (size_t i = 0; i < out.size(); ++i) {
    for (size_t j = 0; j < 16; ++j) EXPECT_EQ(out[i][j], i * 100 + j);
  }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> sum{0};
    ASSERT_TRUE(pool.ParallelFor(10, [&](size_t i) {
      sum.fetch_add(static_cast<int>(i));
      return Status::OK();
    }).ok());
    EXPECT_EQ(sum.load(), 45);
  }
}

// --- End-to-end thread-count invariance -----------------------------------

struct TrainedOutputs {
  std::string meta_weights;
  std::vector<std::string> mappings;
  std::vector<std::vector<std::vector<double>>> tag_scores;
};

/// Trains on the first 3 sources of a small realized domain and matches
/// the rest, capturing everything determinism promises.
TrainedOutputs RunWithThreads(const Domain& domain,
                              const std::string& domain_name,
                              size_t num_threads) {
  TrainedOutputs out;
  LsdConfig config = ConfigForDomain(domain_name, LsdConfig());
  config.num_threads = num_threads;
  LsdSystem system(domain.mediated, config);
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_TRUE(system
                    .AddTrainingSource(domain.sources[s].source,
                                       domain.sources[s].gold)
                    .ok());
  }
  Status trained = system.Train();
  EXPECT_TRUE(trained.ok()) << trained.ToString();
  out.meta_weights = system.meta_learner().Serialize();
  for (size_t s = 3; s < domain.sources.size(); ++s) {
    auto match = system.MatchSource(domain.sources[s].source);
    EXPECT_TRUE(match.ok()) << match.status().ToString();
    if (!match.ok()) continue;
    out.mappings.push_back(match->mapping.ToString());
    out.tag_scores.emplace_back();
    for (const Prediction& p : match->tag_predictions) {
      out.tag_scores.back().push_back(p.scores);
    }
  }
  return out;
}

TEST(ThreadInvarianceTest, TrainAndMatchAreBitIdenticalAcrossThreadCounts) {
  auto domain = MakeEvaluationDomain("real-estate-1", /*num_sources=*/5,
                                     /*num_listings=*/30, /*seed=*/7);
  ASSERT_TRUE(domain.ok()) << domain.status().ToString();

  TrainedOutputs serial = RunWithThreads(*domain, "real-estate-1", 1);
  ASSERT_FALSE(serial.mappings.empty());
  for (size_t threads : {2u, 8u}) {
    TrainedOutputs parallel = RunWithThreads(*domain, "real-estate-1", threads);
    // Meta-learner weights: serialized with %.17g, so equality is
    // bit-level on every double.
    EXPECT_EQ(parallel.meta_weights, serial.meta_weights)
        << "meta weights differ at num_threads=" << threads;
    // Final mappings.
    EXPECT_EQ(parallel.mappings, serial.mappings)
        << "mapping differs at num_threads=" << threads;
    // Per-tag prediction scores, compared exactly (no tolerance).
    ASSERT_EQ(parallel.tag_scores.size(), serial.tag_scores.size());
    for (size_t s = 0; s < serial.tag_scores.size(); ++s) {
      ASSERT_EQ(parallel.tag_scores[s].size(), serial.tag_scores[s].size());
      for (size_t t = 0; t < serial.tag_scores[s].size(); ++t) {
        EXPECT_EQ(parallel.tag_scores[s][t], serial.tag_scores[s][t])
            << "tag prediction differs at num_threads=" << threads
            << " source " << s << " tag " << t;
      }
    }
  }
}

TEST(ThreadInvarianceTest, HardwareConcurrencyKnobMatchesSerial) {
  // num_threads = 0 resolves to "all cores"; results must still match.
  auto domain = MakeEvaluationDomain("faculty-listings", /*num_sources=*/4,
                                     /*num_listings=*/20, /*seed=*/11);
  ASSERT_TRUE(domain.ok()) << domain.status().ToString();
  TrainedOutputs serial = RunWithThreads(*domain, "faculty-listings", 1);
  TrainedOutputs parallel = RunWithThreads(*domain, "faculty-listings", 0);
  EXPECT_EQ(parallel.meta_weights, serial.meta_weights);
  EXPECT_EQ(parallel.mappings, serial.mappings);
  EXPECT_EQ(parallel.tag_scores, serial.tag_scores);
}

}  // namespace
}  // namespace lsd
