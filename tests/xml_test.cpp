#include "gtest/gtest.h"
#include "xml/dtd.h"
#include "xml/dtd_parser.h"
#include "xml/xml.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace lsd {
namespace {

// ---------------------------------------------------------------------------
// XmlNode model
// ---------------------------------------------------------------------------

TEST(XmlNodeTest, FindChildAndChildren) {
  XmlNode root("house");
  root.AddChild("price", "100");
  root.AddChild("phone", "111");
  root.AddChild("phone", "222");
  ASSERT_NE(root.FindChild("price"), nullptr);
  EXPECT_EQ(root.FindChild("price")->text, "100");
  EXPECT_EQ(root.FindChild("nope"), nullptr);
  EXPECT_EQ(root.FindChildren("phone").size(), 2u);
}

TEST(XmlNodeTest, DeepTextJoinsSubtree) {
  XmlNode root("contact");
  root.AddChild("name", "Gail Murphy");
  root.AddChild("firm", "MAX Realtors");
  EXPECT_EQ(root.DeepText(), "Gail Murphy MAX Realtors");
}

TEST(XmlNodeTest, SubtreeSizeAndDepth) {
  XmlNode root("a");
  // Note: AddChild references are invalidated by later sibling inserts
  // (children live in a std::vector), so look "b" up again afterwards.
  root.AddChild("b").AddChild("c");
  root.AddChild("d");
  EXPECT_EQ(root.SubtreeSize(), 4u);
  EXPECT_EQ(root.Depth(), 3u);
  ASSERT_NE(root.FindChild("b"), nullptr);
  EXPECT_EQ(root.FindChild("b")->Depth(), 2u);
}

TEST(XmlNodeTest, AttributesLookup) {
  XmlNode node("x");
  node.attributes.emplace_back("id", "7");
  EXPECT_EQ(node.Attribute("id"), "7");
  EXPECT_EQ(node.Attribute("missing"), "");
}

TEST(XmlNodeTest, VisitPreOrderWithDepth) {
  XmlNode root("a");
  root.AddChild("b").AddChild("c");
  std::vector<std::pair<std::string, size_t>> seen;
  root.Visit([&seen](const XmlNode& n, size_t d) { seen.emplace_back(n.name, d); });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<std::string, size_t>{"a", 0}));
  EXPECT_EQ(seen[1], (std::pair<std::string, size_t>{"b", 1}));
  EXPECT_EQ(seen[2], (std::pair<std::string, size_t>{"c", 2}));
}

TEST(XmlEscapeTest, RoundTrip) {
  std::string nasty = "a<b>&\"quoted\"'x'";
  EXPECT_EQ(XmlUnescape(XmlEscape(nasty)), nasty);
}

TEST(XmlEscapeTest, NumericReferences) {
  EXPECT_EQ(XmlUnescape("&#65;&#x42;"), "AB");
  EXPECT_EQ(XmlUnescape("&unknown;"), "&unknown;");
}

TEST(XmlEscapeTest, MalformedNumericReferencesKeptVerbatimAndCounted) {
  size_t bad = 0;
  // Non-digit garbage after the prefix.
  EXPECT_EQ(XmlUnescape("&#12abc;", &bad), "&#12abc;");
  EXPECT_EQ(bad, 1u);
  // Overflow past any valid code point (previously wrapped via atoi/strtol
  // truncation instead of being rejected).
  EXPECT_EQ(XmlUnescape("&#99999999999999999999;", &bad),
            "&#99999999999999999999;");
  EXPECT_EQ(bad, 1u);
  // NUL is never a valid character reference.
  EXPECT_EQ(XmlUnescape("&#0;&#x0;", &bad), "&#0;&#x0;");
  EXPECT_EQ(bad, 2u);
  // Empty digit payloads.
  EXPECT_EQ(XmlUnescape("&#;&#x;", &bad), "&#;&#x;");
  EXPECT_EQ(bad, 2u);
  // Mixed good and bad in one string: only the bad ones survive verbatim.
  EXPECT_EQ(XmlUnescape("&#65;&#xZZ;&#66;", &bad), "A&#xZZ;B");
  EXPECT_EQ(bad, 1u);
}

TEST(XmlEscapeTest, SupplementaryCodePointsDegradeToPlaceholder) {
  // Valid references above ASCII are in-range XML but outside this
  // byte-oriented pipeline's alphabet; they decode to '?' and do not
  // count as malformed.
  size_t bad = 0;
  EXPECT_EQ(XmlUnescape("&#x1F600;", &bad), "?");
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(XmlUnescape("&#233;", &bad), "?");  // e-acute
  EXPECT_EQ(bad, 0u);
  // The maximum Unicode scalar is valid; one past it is not.
  EXPECT_EQ(XmlUnescape("&#x10FFFF;", &bad), "?");
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(XmlUnescape("&#x110000;", &bad), "&#x110000;");
  EXPECT_EQ(bad, 1u);
}

// ---------------------------------------------------------------------------
// XML parser
// ---------------------------------------------------------------------------

TEST(XmlParserTest, ParsesSimpleDocument) {
  auto doc = ParseXml("<house><price>$70,000</price></house>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root.name, "house");
  ASSERT_EQ(doc->root.children.size(), 1u);
  EXPECT_EQ(doc->root.children[0].name, "price");
  EXPECT_EQ(doc->root.children[0].text, "$70,000");
}

TEST(XmlParserTest, ParsesNestedPaperExample) {
  auto doc = ParseXml(R"(
    <house-listing>
      <location>Seattle, WA</location>
      <price> $70,000</price>
      <contact><name>Kate Richardson</name>
        <phone>(206) 523 4719</phone>
      </contact>
    </house-listing>)");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root.name, "house-listing");
  ASSERT_EQ(doc->root.children.size(), 3u);
  const XmlNode* contact = doc->root.FindChild("contact");
  ASSERT_NE(contact, nullptr);
  EXPECT_EQ(contact->FindChild("phone")->text, "(206) 523 4719");
}

TEST(XmlParserTest, NormalizesWhitespace) {
  auto doc = ParseXml("<a>  hello\n   world  </a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root.text, "hello world");
}

TEST(XmlParserTest, ParsesAttributes) {
  auto doc = ParseXml(R"(<a id="1" name='two &amp; three'/>)");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root.Attribute("id"), "1");
  EXPECT_EQ(doc->root.Attribute("name"), "two & three");
}

TEST(XmlParserTest, StrictModeRejectsMalformedCharacterReferences) {
  // In text content.
  auto doc = ParseXml("<a>bad &#12abc; ref</a>");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
  EXPECT_NE(doc.status().message().find("malformed character reference"),
            std::string::npos);
  // In an attribute value.
  auto attr = ParseXml(R"(<a name="x&#xZZ;y"/>)");
  ASSERT_FALSE(attr.ok());
  EXPECT_EQ(attr.status().code(), StatusCode::kParseError);
  EXPECT_NE(attr.status().message().find("attribute"), std::string::npos);
}

TEST(XmlParserTest, LenientModeRecordsMalformedReferencesAsDiagnostics) {
  auto report = ParseXmlLenient(
      R"(<a name="x&#xZZ;"><b>keep &#0; going</b></a>)");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->document.root.name, "a");
  // The malformed references stay verbatim in the recovered document...
  EXPECT_EQ(report->document.root.Attribute("name"), "x&#xZZ;");
  ASSERT_EQ(report->document.root.children.size(), 1u);
  EXPECT_EQ(report->document.root.children[0].text, "keep &#0; going");
  // ...and each site is reported.
  ASSERT_EQ(report->diagnostics.size(), 2u);
  EXPECT_NE(report->diagnostics[0].message.find("attribute"),
            std::string::npos);
  EXPECT_NE(report->diagnostics[1].message.find("text of element"),
            std::string::npos);
}

TEST(XmlParserTest, SelfClosingTag) {
  auto doc = ParseXml("<a><b/><c>x</c></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root.children.size(), 2u);
  EXPECT_TRUE(doc->root.children[0].IsLeaf());
}

TEST(XmlParserTest, DigitLeadingNamesRoundTrip) {
  // Scraped schemas use tags like <3d-tour>; the DTD parser accepts
  // digit-leading names everywhere, so the XML side must read back what
  // the writer emits for them.
  auto doc = ParseXml("<listing><3d-tour>http://x</3d-tour></listing>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_EQ(doc->root.children.size(), 1u);
  EXPECT_EQ(doc->root.children[0].name, "3d-tour");
  EXPECT_EQ(doc->root.children[0].text, "http://x");
}

TEST(XmlParserTest, SkipsCommentsAndProcessingInstructions) {
  auto doc = ParseXml(
      "<?xml version=\"1.0\"?><!-- comment --><a><!-- inner -->x<?pi data?></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root.text, "x");
}

TEST(XmlParserTest, SkipsDoctypeWithInternalSubset) {
  auto doc = ParseXml(
      "<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a>content</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root.text, "content");
}

TEST(XmlParserTest, CdataPreserved) {
  auto doc = ParseXml("<a><![CDATA[5 < 6 & 7 > 2]]></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root.text, "5 < 6 & 7 > 2");
}

TEST(XmlParserTest, EntityDecoding) {
  auto doc = ParseXml("<a>&lt;tag&gt; &amp; &quot;text&quot;</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root.text, "<tag> & \"text\"");
}

TEST(XmlParserTest, MismatchedCloseTagFails) {
  auto doc = ParseXml("<a><b>x</c></a>");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
}

TEST(XmlParserTest, UnterminatedElementFails) {
  EXPECT_FALSE(ParseXml("<a><b>x</b>").ok());
}

TEST(XmlParserTest, TrailingContentFails) {
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());
}

TEST(XmlParserTest, ErrorsReportLineAndColumn) {
  auto doc = ParseXml("<a>\n<b>\n</wrong>\n</a>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("line 3"), std::string::npos);
}

TEST(XmlParserTest, EmptyInputFails) { EXPECT_FALSE(ParseXml("").ok()); }

// ---------------------------------------------------------------------------
// XML writer
// ---------------------------------------------------------------------------

TEST(XmlWriterTest, RoundTripsThroughParser) {
  XmlNode root("listing");
  root.AddChild("price", "$70,000");
  XmlNode& contact = root.AddChild("contact");
  contact.AddChild("name", "Kate & Co");
  contact.attributes.emplace_back("kind", "agent");
  std::string text = WriteXml(root);
  auto parsed = ParseXmlElement(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, root);
}

TEST(XmlWriterTest, CompactMode) {
  XmlNode root("a");
  root.AddChild("b", "x");
  XmlWriteOptions options;
  options.pretty = false;
  EXPECT_EQ(WriteXml(root, options), "<a><b>x</b></a>");
}

TEST(XmlWriterTest, EmptyElementSelfCloses) {
  XmlNode root("a");
  XmlWriteOptions options;
  options.pretty = false;
  EXPECT_EQ(WriteXml(root, options), "<a/>");
}

TEST(XmlWriterTest, DeclarationEmitted) {
  XmlNode root("a");
  XmlWriteOptions options;
  options.pretty = false;
  options.declaration = true;
  EXPECT_EQ(WriteXml(root, options),
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>");
}

// ---------------------------------------------------------------------------
// DTD model
// ---------------------------------------------------------------------------

Dtd PaperMediatedDtd() {
  return ParseDtd(R"(
    <!ELEMENT house-listing (location?, price, contact)>
    <!ELEMENT location (#PCDATA)>
    <!ELEMENT price (#PCDATA)>
    <!ELEMENT contact (name, phone)>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT phone (#PCDATA)>
  )").value();
}

TEST(DtdTest, BasicAccessors) {
  Dtd dtd = PaperMediatedDtd();
  EXPECT_EQ(dtd.root_name(), "house-listing");
  EXPECT_EQ(dtd.AllTags().size(), 6u);
  EXPECT_EQ(dtd.LeafTags().size(), 4u);
  EXPECT_EQ(dtd.NonLeafTags(),
            (std::vector<std::string>{"house-listing", "contact"}));
  EXPECT_TRUE(dtd.Contains("phone"));
  EXPECT_FALSE(dtd.Contains("zip"));
}

TEST(DtdTest, ChildAndParentTags) {
  Dtd dtd = PaperMediatedDtd();
  EXPECT_EQ(dtd.ChildTags("contact"), (std::vector<std::string>{"name", "phone"}));
  EXPECT_EQ(dtd.ParentTags("phone"), (std::vector<std::string>{"contact"}));
  EXPECT_TRUE(dtd.ChildTags("price").empty());
}

TEST(DtdTest, DescendantsAndDepth) {
  Dtd dtd = PaperMediatedDtd();
  EXPECT_TRUE(dtd.IsDescendant("house-listing", "phone"));
  EXPECT_TRUE(dtd.IsDescendant("contact", "name"));
  EXPECT_FALSE(dtd.IsDescendant("contact", "price"));
  EXPECT_FALSE(dtd.IsDescendant("phone", "contact"));
  EXPECT_EQ(dtd.DescendantCount("house-listing"), 5u);
  EXPECT_EQ(dtd.DescendantCount("contact"), 2u);
  EXPECT_EQ(dtd.DescendantCount("phone"), 0u);
  EXPECT_EQ(dtd.MaxDepth(), 3u);
}

TEST(DtdTest, DuplicateDeclarationRejected) {
  Dtd dtd;
  ASSERT_TRUE(dtd.AddElement({"a", ContentParticle::Pcdata()}).ok());
  EXPECT_EQ(dtd.AddElement({"a", ContentParticle::Pcdata()}).code(),
            StatusCode::kAlreadyExists);
}

TEST(DtdTest, ValidateCatchesDanglingReference) {
  Dtd dtd;
  ASSERT_TRUE(dtd.AddElement(
                     {"a", ContentParticle::Sequence(
                               {ContentParticle::Element("missing")})})
                  .ok());
  EXPECT_FALSE(dtd.Validate().ok());
}

TEST(DtdTest, RecursiveDtdDepthBounded) {
  Dtd dtd;
  ASSERT_TRUE(
      dtd.AddElement({"a", ContentParticle::Sequence(
                               {ContentParticle::Element("a", Occurrence::kOptional)})})
          .ok());
  EXPECT_GE(dtd.MaxDepth(), 1u);  // must terminate
}

TEST(DtdTest, ValidateDocumentAcceptsConforming) {
  Dtd dtd = PaperMediatedDtd();
  auto doc = ParseXml(R"(
    <house-listing>
      <location>Seattle</location><price>1</price>
      <contact><name>K</name><phone>2</phone></contact>
    </house-listing>)");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(dtd.ValidateDocument(doc->root).ok());
}

TEST(DtdTest, ValidateDocumentOptionalMayBeAbsent) {
  Dtd dtd = PaperMediatedDtd();
  auto doc = ParseXml(
      "<house-listing><price>1</price>"
      "<contact><name>K</name><phone>2</phone></contact></house-listing>");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(dtd.ValidateDocument(doc->root).ok());
}

TEST(DtdTest, ValidateDocumentRejectsMissingRequired) {
  Dtd dtd = PaperMediatedDtd();
  auto doc = ParseXml("<house-listing><price>1</price></house-listing>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(dtd.ValidateDocument(doc->root).ok());
}

TEST(DtdTest, ValidateDocumentRejectsWrongOrder) {
  Dtd dtd = PaperMediatedDtd();
  auto doc = ParseXml(
      "<house-listing><contact><name>K</name><phone>2</phone></contact>"
      "<price>1</price></house-listing>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(dtd.ValidateDocument(doc->root).ok());
}

TEST(DtdTest, ValidateDocumentRejectsUndeclared) {
  Dtd dtd = PaperMediatedDtd();
  auto doc = ParseXml("<mystery/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(dtd.ValidateDocument(doc->root).ok());
}

TEST(DtdTest, ValidateDocumentPcdataWithChildrenRejected) {
  Dtd dtd = PaperMediatedDtd();
  auto doc = ParseXml(
      "<house-listing><price><x>1</x></price>"
      "<contact><name>K</name><phone>2</phone></contact></house-listing>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(dtd.ValidateDocument(doc->root).ok());
}

TEST(DtdTest, ChoiceAndRepetitionContentModels) {
  Dtd dtd = ParseDtd(R"(
    <!ELEMENT list ((a | b)*, c+)>
    <!ELEMENT a (#PCDATA)>
    <!ELEMENT b (#PCDATA)>
    <!ELEMENT c (#PCDATA)>
  )").value();
  auto ok1 = ParseXml("<list><a>1</a><b>2</b><a>3</a><c>4</c></list>");
  EXPECT_TRUE(dtd.ValidateDocument(ok1->root).ok());
  auto ok2 = ParseXml("<list><c>1</c><c>2</c></list>");
  EXPECT_TRUE(dtd.ValidateDocument(ok2->root).ok());
  auto bad1 = ParseXml("<list><a>1</a></list>");  // missing required c
  EXPECT_FALSE(dtd.ValidateDocument(bad1->root).ok());
  auto bad2 = ParseXml("<list><c>1</c><a>2</a></list>");  // a after c
  EXPECT_FALSE(dtd.ValidateDocument(bad2->root).ok());
}

TEST(DtdTest, ToStringRoundTripsThroughParser) {
  Dtd dtd = PaperMediatedDtd();
  auto reparsed = ParseDtd(dtd.ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->AllTags(), dtd.AllTags());
  EXPECT_EQ(reparsed->ToString(), dtd.ToString());
}

// ---------------------------------------------------------------------------
// DTD parser
// ---------------------------------------------------------------------------

TEST(DtdParserTest, ParsesOccurrenceIndicators) {
  auto model = ParseContentModel("(a, b?, c*, d+)");
  ASSERT_TRUE(model.ok());
  ASSERT_EQ(model->children.size(), 4u);
  EXPECT_EQ(model->children[0].occurrence, Occurrence::kOne);
  EXPECT_EQ(model->children[1].occurrence, Occurrence::kOptional);
  EXPECT_EQ(model->children[2].occurrence, Occurrence::kZeroOrMore);
  EXPECT_EQ(model->children[3].occurrence, Occurrence::kOneOrMore);
}

TEST(DtdParserTest, ParsesNestedGroups) {
  auto model = ParseContentModel("((a | b)+, c)");
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->kind, ParticleKind::kSequence);
  EXPECT_EQ(model->children[0].kind, ParticleKind::kChoice);
  EXPECT_EQ(model->children[0].occurrence, Occurrence::kOneOrMore);
}

TEST(DtdParserTest, ParsesMixedContent) {
  auto dtd = ParseDtd(R"(
    <!ELEMENT p (#PCDATA | em | strong)*>
    <!ELEMENT em (#PCDATA)>
    <!ELEMENT strong (#PCDATA)>
  )");
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(dtd->Find("p")->content.kind, ParticleKind::kMixed);
  EXPECT_EQ(dtd->Find("p")->content.children.size(), 2u);
}

TEST(DtdParserTest, ParsesEmptyAndAny) {
  auto dtd = ParseDtd(R"(
    <!ELEMENT root (img, blob)>
    <!ELEMENT img EMPTY>
    <!ELEMENT blob ANY>
  )");
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(dtd->Find("img")->content.kind, ParticleKind::kEmpty);
  EXPECT_EQ(dtd->Find("blob")->content.kind, ParticleKind::kAny);
}

TEST(DtdParserTest, SkipsAttlistAndComments) {
  auto dtd = ParseDtd(R"(
    <!-- mediated schema -->
    <!ELEMENT a (#PCDATA)>
    <!ATTLIST a id CDATA #REQUIRED>
  )");
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(dtd->AllTags().size(), 1u);
}

TEST(DtdParserTest, MixedSeparatorsRejected) {
  EXPECT_FALSE(ParseContentModel("(a, b | c)").ok());
}

TEST(DtdParserTest, DanglingReferenceRejected) {
  EXPECT_FALSE(ParseDtd("<!ELEMENT a (b)>").ok());
}

TEST(DtdParserTest, GarbageRejected) {
  EXPECT_FALSE(ParseDtd("<!ELEMNT a (#PCDATA)>").ok());
  EXPECT_FALSE(ParseDtd("<!ELEMENT a #PCDATA>").ok());
}

TEST(DtdParserTest, SingleChildGroupCollapses) {
  auto model = ParseContentModel("(a)");
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->kind, ParticleKind::kElement);
  EXPECT_EQ(model->element_name, "a");
}

}  // namespace
}  // namespace lsd
