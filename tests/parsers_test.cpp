#include <cstdio>
#include <string>

#include "common/file_util.h"
#include "constraints/constraint_parser.h"
#include "datagen/domains.h"
#include "gtest/gtest.h"
#include "schema/schema.h"

namespace lsd {
namespace {

// ---------------------------------------------------------------------------
// Mapping text format
// ---------------------------------------------------------------------------

TEST(ParseMappingTest, ParsesEntriesSkippingCommentsAndBlanks) {
  auto mapping = ParseMapping(R"(# gold mapping
location <=> ADDRESS

phone <=> AGENT-PHONE
)");
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(mapping->size(), 2u);
  EXPECT_EQ(mapping->LabelOrOther("location"), "ADDRESS");
  EXPECT_EQ(mapping->LabelOrOther("phone"), "AGENT-PHONE");
}

TEST(ParseMappingTest, RoundTripsToString) {
  Mapping original;
  original.Set("a", "X");
  original.Set("b-c", "Y-Z");
  auto reparsed = ParseMapping(original.ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->entries(), original.entries());
}

TEST(ParseMappingTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseMapping("location ADDRESS").ok());
  EXPECT_FALSE(ParseMapping("<=> ADDRESS").ok());
  EXPECT_FALSE(ParseMapping("location <=>").ok());
}

TEST(ParseMappingTest, RejectsDuplicateTags) {
  auto mapping = ParseMapping("a <=> X\na <=> Y\n");
  ASSERT_FALSE(mapping.ok());
  EXPECT_NE(mapping.status().message().find("duplicate"), std::string::npos);
}

TEST(ParseMappingTest, ReportsLineNumbers) {
  auto mapping = ParseMapping("a <=> X\nbroken line\n");
  ASSERT_FALSE(mapping.ok());
  EXPECT_NE(mapping.status().message().find("line 2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Constraint file format
// ---------------------------------------------------------------------------

TEST(ParseConstraintsTest, ParsesEveryKind) {
  auto constraints = ParseConstraints(R"(# domain constraints
frequency PRICE 1 1
nesting CONTACT-INFO AGENT-PHONE required
nesting CONTACT-INFO PRICE forbidden
contiguity NUM-BEDROOMS NUM-BATHROOMS
exclusivity COURSE-CREDIT SECTION-CREDIT
key HOUSE-ID
fd CITY FIRM-NAME FIRM-ADDRESS
count-limit DESCRIPTION 3 1.0
proximity AGENT-NAME AGENT-PHONE 0.1
)");
  ASSERT_TRUE(constraints.ok());
  ASSERT_EQ(constraints->size(), 9u);
  EXPECT_EQ((*constraints)[0]->type(), ConstraintType::kFrequency);
  EXPECT_EQ((*constraints)[1]->type(), ConstraintType::kNesting);
  EXPECT_EQ((*constraints)[3]->type(), ConstraintType::kContiguity);
  EXPECT_EQ((*constraints)[4]->type(), ConstraintType::kExclusivity);
  EXPECT_EQ((*constraints)[5]->type(), ConstraintType::kColumn);
  EXPECT_EQ((*constraints)[6]->type(), ConstraintType::kColumn);
  EXPECT_EQ((*constraints)[7]->type(), ConstraintType::kBinarySoft);
  EXPECT_EQ((*constraints)[8]->type(), ConstraintType::kNumericSoft);
}

TEST(ParseConstraintsTest, RoundTripsThroughToConfigLine) {
  const char* text = R"(frequency PRICE 1 1
nesting CONTACT-INFO AGENT-PHONE required
contiguity NUM-BEDROOMS NUM-BATHROOMS
exclusivity A B
key HOUSE-ID
fd CITY FIRM-NAME FIRM-ADDRESS
count-limit DESCRIPTION 3 1
proximity AGENT-NAME AGENT-PHONE 0.1
)";
  auto first = ParseConstraints(text);
  ASSERT_TRUE(first.ok());
  std::string rendered;
  for (const auto& constraint : *first) {
    rendered += constraint->ToConfigLine() + "\n";
  }
  auto second = ParseConstraints(rendered);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->size(), first->size());
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*second)[i]->ToConfigLine(), (*first)[i]->ToConfigLine());
    EXPECT_EQ((*second)[i]->Describe(), (*first)[i]->Describe());
  }
}

TEST(ParseConstraintsTest, DomainConstraintsSerializeAndReload) {
  auto domain = MakeEvaluationDomain("real-estate-2", 2, 5, 7);
  ASSERT_TRUE(domain.ok());
  std::string text;
  size_t expected = 0;
  for (const auto& constraint : MakeDomainConstraints(*domain)) {
    std::string line = constraint->ToConfigLine();
    ASSERT_FALSE(line.empty()) << constraint->Describe();
    text += line + "\n";
    ++expected;
  }
  auto reloaded = ParseConstraints(text);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->size(), expected);
}

TEST(ParseConstraintsTest, RejectsErrorsWithLineNumbers) {
  auto r1 = ParseConstraints("frequency PRICE 2 1\n");
  EXPECT_FALSE(r1.ok());  // min > max
  auto r2 = ParseConstraints("nesting A B sometimes\n");
  EXPECT_FALSE(r2.ok());
  auto r3 = ParseConstraints("key\n");
  EXPECT_FALSE(r3.ok());
  auto r4 = ParseConstraints("frobnicate A B\n");
  ASSERT_FALSE(r4.ok());
  EXPECT_NE(r4.status().message().find("line 1"), std::string::npos);
  auto r5 = ParseConstraints("frequency PRICE 1 1\ncount-limit X y z\n");
  ASSERT_FALSE(r5.ok());
  EXPECT_NE(r5.status().message().find("line 2"), std::string::npos);
}

TEST(ParseConstraintsTest, ParsedConstraintsEvaluate) {
  auto constraints = ParseConstraints("frequency PRICE 0 1\n");
  ASSERT_TRUE(constraints.ok());
  LabelSpace labels({"PRICE"});
  Dtd schema;
  ASSERT_TRUE(schema.AddElement({"root", ContentParticle::Sequence(
                                             {ContentParticle::Element("a"),
                                              ContentParticle::Element("b")})})
                  .ok());
  ASSERT_TRUE(schema.AddElement({"a", ContentParticle::Pcdata()}).ok());
  ASSERT_TRUE(schema.AddElement({"b", ContentParticle::Pcdata()}).ok());
  ConstraintContext context(&schema, nullptr);
  Assignment assignment(3);
  assignment.labels[1] = labels.IndexOf("PRICE");
  assignment.labels[2] = labels.IndexOf("PRICE");
  EXPECT_EQ((*constraints)[0]->Cost(assignment, labels, context),
            kInfiniteCost);
}

// ---------------------------------------------------------------------------
// File utilities
// ---------------------------------------------------------------------------

TEST(FileUtilTest, WriteThenReadRoundTrip) {
  std::string path = ::testing::TempDir() + "/lsd_file_util_test.txt";
  std::string contents = "line one\nline two\0with a nul";
  ASSERT_TRUE(WriteStringToFile(path, contents).ok());
  auto read_back = ReadFileToString(path);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(*read_back, contents);
  std::remove(path.c_str());
}

TEST(FileUtilTest, MissingFileIsNotFound) {
  auto result = ReadFileToString("/nonexistent/definitely/missing.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(FileUtilTest, OverwriteReplaces) {
  std::string path = ::testing::TempDir() + "/lsd_file_util_test2.txt";
  ASSERT_TRUE(WriteStringToFile(path, "first version, long").ok());
  ASSERT_TRUE(WriteStringToFile(path, "short").ok());
  auto read_back = ReadFileToString(path);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(*read_back, "short");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lsd
