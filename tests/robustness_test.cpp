// Fault-tolerance tests: hardened parsers (fuzz corpus, resource limits,
// lenient recovery), deterministic fault injection, learner quarantine
// with graceful degradation, and anytime deadlines.

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/artifact_io.h"
#include "common/deadline.h"
#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "constraints/constraint_parser.h"
#include "core/checkpoint.h"
#include "core/lsd_system.h"
#include "gtest/gtest.h"
#include "net/client.h"
#include "net/server.h"
#include "service/match_service.h"
#include "xml/dtd_parser.h"
#include "xml/xml_parser.h"

namespace lsd {
namespace {

// ---------------------------------------------------------------------------
// Seeded fuzz corpus: mutated documents must never crash a parser — strict
// mode may reject, lenient mode may recover or reject, but every outcome
// is a Status, not a signal.

std::string Mutate(const std::string& seed_text, Rng* rng) {
  static const std::string kNoise = "<>&;!?()|*,\"'=/#[]";
  std::string s = seed_text;
  int edits = 1 + static_cast<int>(rng->UniformInt(0, 7));
  for (int e = 0; e < edits && !s.empty(); ++e) {
    size_t at = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(s.size()) - 1));
    switch (rng->UniformInt(0, 3)) {
      case 0: {  // delete a span
        size_t len = static_cast<size_t>(rng->UniformInt(1, 12));
        s.erase(at, len);
        break;
      }
      case 1: {  // duplicate a span
        size_t len = static_cast<size_t>(rng->UniformInt(1, 12));
        s.insert(at, s.substr(at, len));
        break;
      }
      case 2:  // flip a byte to markup noise
        s[at] = kNoise[static_cast<size_t>(
            rng->UniformInt(0, static_cast<int64_t>(kNoise.size()) - 1))];
        break;
      default:  // insert markup noise
        s.insert(at, 1,
                 kNoise[static_cast<size_t>(rng->UniformInt(
                     0, static_cast<int64_t>(kNoise.size()) - 1))]);
        break;
    }
  }
  return s;
}

TEST(FuzzCorpusTest, MutatedInputsNeverCrashTheParsers) {
  const std::string xml_seed =
      "<listings><house id=\"1\"><addr>12 Main St</addr>"
      "<price>100,000</price><agent><name>Kate</name></agent></house>"
      "<house><addr>9 Elm &amp; Oak</addr><!-- note --><price>88</price>"
      "</house></listings>";
  const std::string dtd_seed =
      "<!ELEMENT listings (house*)>\n"
      "<!ELEMENT house (addr, price?, agent*)>\n"
      "<!ELEMENT addr (#PCDATA)>\n"
      "<!ELEMENT price (#PCDATA)>\n"
      "<!ELEMENT agent (name | #PCDATA)>\n";
  ASSERT_TRUE(ParseXml(xml_seed).ok());

  Rng rng(20260806);
  size_t xml_recovered = 0;
  for (int iter = 0; iter < 400; ++iter) {
    std::string xml = Mutate(xml_seed, &rng);
    std::string dtd = Mutate(dtd_seed, &rng);
    (void)ParseXml(xml);
    (void)ParseDtd(dtd);
    auto xml_report = ParseXmlLenient(xml);
    if (xml_report.ok()) {
      // A recovered document always has a real root element.
      EXPECT_FALSE(xml_report->document.root.name.empty());
      if (!xml_report->clean()) ++xml_recovered;
    }
    (void)ParseDtdLenient(dtd);
  }
  // The corpus must actually exercise the recovery paths, not just the
  // happy path or total rejection.
  EXPECT_GT(xml_recovered, 20u);
}

TEST(FuzzCorpusTest, MutatedConstraintFilesNeverCrashTheParser) {
  const std::string seed_text =
      "# domain constraints\n"
      "frequency ADDRESS 1 1\n"
      "nesting HOUSE ADDRESS required\n"
      "contiguity AGENT-NAME AGENT-PHONE\n"
      "exclusivity ADDRESS DESCRIPTION\n"
      "key ADDRESS\n"
      "fd AGENT-NAME AGENT-PHONE ADDRESS\n"
      "count-limit DESCRIPTION 2 0.5\n"
      "proximity AGENT-NAME AGENT-PHONE 0.25\n";
  ASSERT_TRUE(ParseConstraints(seed_text).ok());
  Rng rng(4242);
  size_t accepted = 0;
  for (int iter = 0; iter < 300; ++iter) {
    auto result = ParseConstraints(Mutate(seed_text, &rng));
    if (result.ok()) ++accepted;  // Ok or clean error; never a crash.
  }
  // Some mutants survive (comment/whitespace edits), most get rejected.
  EXPECT_GT(accepted, 0u);
  EXPECT_LT(accepted, 300u);
}

TEST(FuzzCorpusTest, TightLimitsNeverCrashTheParsers) {
  ParseLimits tight;
  tight.max_input_bytes = 64;
  tight.max_depth = 3;
  tight.max_nodes = 8;
  Rng rng(99);
  const std::string seed_text = "<a><b><c>x</c></b><b>y</b></a>";
  for (int iter = 0; iter < 200; ++iter) {
    std::string xml = Mutate(seed_text, &rng);
    (void)ParseXml(xml, tight);
    (void)ParseXmlLenient(xml, tight);
  }
}

// ---------------------------------------------------------------------------
// Resource limits: adversarial inputs return kOutOfRange instead of
// overflowing the recursion stack or exhausting memory — in both modes.

TEST(ParseLimitsTest, DeepXmlNestingReturnsOutOfRange) {
  std::string deep;
  for (int i = 0; i < 600; ++i) deep += "<a>";
  deep += "x";
  for (int i = 0; i < 600; ++i) deep += "</a>";
  auto strict = ParseXml(deep);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kOutOfRange);
  // Lenient mode must not "recover" a resource limit.
  auto lenient = ParseXmlLenient(deep);
  ASSERT_FALSE(lenient.ok());
  EXPECT_EQ(lenient.status().code(), StatusCode::kOutOfRange);
}

TEST(ParseLimitsTest, DeepDtdContentModelReturnsOutOfRange) {
  std::string model;
  for (int i = 0; i < 400; ++i) model += "(";
  model += "b";
  for (int i = 0; i < 400; ++i) model += ")";
  auto spec = ParseContentModel(model);
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kOutOfRange);
  auto dtd = ParseDtd("<!ELEMENT a " + model + ">");
  ASSERT_FALSE(dtd.ok());
  EXPECT_EQ(dtd.status().code(), StatusCode::kOutOfRange);
}

TEST(ParseLimitsTest, InputAndNodeBudgets) {
  ParseLimits limits;
  limits.max_input_bytes = 16;
  auto oversized = ParseXml("<a>0123456789012345678</a>", limits);
  ASSERT_FALSE(oversized.ok());
  EXPECT_EQ(oversized.status().code(), StatusCode::kOutOfRange);

  ParseLimits node_limit;
  node_limit.max_nodes = 3;
  auto too_many = ParseXml("<a><b/><c/><d/><e/></a>", node_limit);
  ASSERT_FALSE(too_many.ok());
  EXPECT_EQ(too_many.status().code(), StatusCode::kOutOfRange);
}

// ---------------------------------------------------------------------------
// Lenient recovery semantics.

TEST(LenientXmlTest, SkipsMalformedElementKeepsSiblings) {
  auto report = ParseXmlLenient(
      "<root><good>1</good><bad <<<</bad><good>2</good></root>");
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean());
  EXPECT_GE(report->skipped_elements, 1u);
  EXPECT_FALSE(report->diagnostics.empty());
  EXPECT_EQ(report->document.root.FindChildren("good").size(), 2u);
}

TEST(LenientXmlTest, ImplicitlyClosesUnterminatedElements) {
  auto report = ParseXmlLenient("<root><a><b>text</a><c>tail</c>");
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean());
  const XmlNode& root = report->document.root;
  ASSERT_NE(root.FindChild("a"), nullptr);
  EXPECT_NE(root.FindChild("a")->FindChild("b"), nullptr);
  EXPECT_NE(root.FindChild("c"), nullptr);
}

TEST(LenientXmlTest, DropsStrayCloseTags) {
  auto report = ParseXmlLenient("<root><a>x</a></nope></root>");
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean());
  EXPECT_NE(report->document.root.FindChild("a"), nullptr);
}

TEST(LenientDtdTest, SkipsBrokenDeclarationKeepsRest) {
  auto report = ParseDtdLenient(
      "<!ELEMENT broken (a, b\n<!ELEMENT house (#PCDATA)>\n");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->skipped_declarations, 1u);
  EXPECT_NE(report->dtd.Find("house"), nullptr);
}

TEST(LenientDtdTest, DanglingReferenceBecomesDiagnostic) {
  const std::string text = "<!ELEMENT a (b, ghost)>\n<!ELEMENT b (#PCDATA)>\n";
  ASSERT_FALSE(ParseDtd(text).ok());
  auto report = ParseDtdLenient(text);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->diagnostics.empty());
  EXPECT_NE(report->dtd.Find("a"), nullptr);
}

// ---------------------------------------------------------------------------
// The fault injector itself: decisions are a pure function of
// (rules, seed, site, key).

TEST(FaultInjectorTest, ProbabilisticDecisionsAreKeyPure) {
  FaultInjector a(7);
  FaultInjector b(7);
  a.FailWithProbability(FaultSite::kLearnerPredict, 0.5,
                        Status::Internal("boom"));
  b.FailWithProbability(FaultSite::kLearnerPredict, 0.5,
                        Status::Internal("boom"));
  size_t failures = 0;
  for (int k = 0; k < 200; ++k) {
    std::string key = "learner/" + std::to_string(k);
    Status sa = a.Check(FaultSite::kLearnerPredict, key);
    Status sb = b.Check(FaultSite::kLearnerPredict, key);
    EXPECT_EQ(sa.ok(), sb.ok()) << key;
    // Re-checking the same key must give the same verdict.
    EXPECT_EQ(sa.ok(), a.Check(FaultSite::kLearnerPredict, key).ok());
    if (!sa.ok()) ++failures;
  }
  EXPECT_GT(failures, 50u);
  EXPECT_LT(failures, 150u);
  // Other sites are untouched by the rule.
  EXPECT_TRUE(a.Check(FaultSite::kFileRead, "learner/1").ok());
}

TEST(FaultInjectorTest, SubstringRuleAnnotatesSiteAndKey) {
  FaultInjector injector;
  injector.FailMatching(FaultSite::kFileRead, "flaky",
                        Status::Internal("disk error"));
  Status status = injector.Check(FaultSite::kFileRead, "/data/flaky.xml");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("disk error"), std::string::npos);
  EXPECT_NE(status.message().find("file-read"), std::string::npos);
  EXPECT_TRUE(injector.Check(FaultSite::kFileRead, "/data/solid.xml").ok());
  EXPECT_EQ(injector.injected_count(), 1u);
}

TEST(FaultInjectionTest, FileReadSeam) {
  FaultInjector injector;
  injector.FailMatching(FaultSite::kFileRead, "injected-io-target",
                        Status::Internal("io fault"));
  ScopedFaultInjection scoped(&injector);
  auto result = ReadFileToString("/tmp/injected-io-target.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("io fault"), std::string::npos);
}

TEST(FaultInjectionTest, PoolTaskSeamIsDeterministicAcrossThreadCounts) {
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    FaultInjector injector;
    injector.FailMatching(FaultSite::kPoolTask, "7",
                          Status::Internal("task fault"));
    ScopedFaultInjection scoped(&injector);
    ThreadPool pool(threads);
    Status status =
        pool.ParallelFor(16, [&](size_t) -> Status { return Status::OK(); });
    ASSERT_FALSE(status.ok()) << threads << " threads";
    EXPECT_NE(status.message().find("task fault"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// System-level quarantine and deadlines: the two-source real-estate world
// from core_test, under injected faults.

class RobustnessSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mediated_ = ParseDtd(R"(
      <!ELEMENT HOUSE (ADDRESS, DESCRIPTION, CONTACT-INFO)>
      <!ELEMENT ADDRESS (#PCDATA)>
      <!ELEMENT DESCRIPTION (#PCDATA)>
      <!ELEMENT CONTACT-INFO (AGENT-NAME, AGENT-PHONE)>
      <!ELEMENT AGENT-NAME (#PCDATA)>
      <!ELEMENT AGENT-PHONE (#PCDATA)>
    )").value();

    source_a_ = MakeSource(
        "a.com",
        R"(<!ELEMENT house-listing (location, comments, contact)>
           <!ELEMENT location (#PCDATA)>
           <!ELEMENT comments (#PCDATA)>
           <!ELEMENT contact (name, phone)>
           <!ELEMENT name (#PCDATA)>
           <!ELEMENT phone (#PCDATA)>)",
        {"house-listing", "location", "comments", "contact", "name", "phone"},
        11);
    gold_a_.Set("house-listing", "HOUSE");
    gold_a_.Set("location", "ADDRESS");
    gold_a_.Set("comments", "DESCRIPTION");
    gold_a_.Set("contact", "CONTACT-INFO");
    gold_a_.Set("name", "AGENT-NAME");
    gold_a_.Set("phone", "AGENT-PHONE");

    source_b_ = MakeSource(
        "b.com",
        R"(<!ELEMENT listing (house-addr, detailed-desc, agent-info)>
           <!ELEMENT house-addr (#PCDATA)>
           <!ELEMENT detailed-desc (#PCDATA)>
           <!ELEMENT agent-info (agent-name, agent-phone)>
           <!ELEMENT agent-name (#PCDATA)>
           <!ELEMENT agent-phone (#PCDATA)>)",
        {"listing", "house-addr", "detailed-desc", "agent-info", "agent-name",
         "agent-phone"},
        22);
    gold_b_.Set("listing", "HOUSE");
    gold_b_.Set("house-addr", "ADDRESS");
    gold_b_.Set("detailed-desc", "DESCRIPTION");
    gold_b_.Set("agent-info", "CONTACT-INFO");
    gold_b_.Set("agent-name", "AGENT-NAME");
    gold_b_.Set("agent-phone", "AGENT-PHONE");

    target_ = MakeSource(
        "c.com",
        R"(<!ELEMENT home (area, extra-info, reach)>
           <!ELEMENT area (#PCDATA)>
           <!ELEMENT extra-info (#PCDATA)>
           <!ELEMENT reach (realtor, work-phone)>
           <!ELEMENT realtor (#PCDATA)>
           <!ELEMENT work-phone (#PCDATA)>)",
        {"home", "area", "extra-info", "reach", "realtor", "work-phone"}, 33);
  }

  static DataSource MakeSource(const std::string& name,
                               const std::string& dtd_text,
                               const std::vector<std::string>& tags,
                               uint64_t seed) {
    static const std::vector<std::string> kCities = {
        "Miami, FL",  "Boston, MA",   "Seattle, WA",
        "Austin, TX", "Portland, OR", "Denver, CO"};
    static const std::vector<std::string> kDescs = {
        "Fantastic house great location",
        "Beautiful home spacious yard",
        "Great views close to river",
        "Charming cottage near great schools",
        "Spacious home fantastic neighborhood"};
    static const std::vector<std::string> kNames = {
        "Kate Richardson", "Mike Smith", "Jane Kendall", "Matt Brown"};
    DataSource source;
    source.name = name;
    source.schema = ParseDtd(dtd_text).value();
    Rng rng(seed);
    for (int i = 0; i < 30; ++i) {
      std::string phone = "(" + std::to_string(rng.UniformInt(200, 999)) +
                          ") " + std::to_string(rng.UniformInt(200, 999)) +
                          " " + std::to_string(rng.UniformInt(1000, 9999));
      std::string xml = "<" + tags[0] + ">" +
                        "<" + tags[1] + ">" + rng.Pick(kCities) + "</" + tags[1] + ">" +
                        "<" + tags[2] + ">" + rng.Pick(kDescs) + "</" + tags[2] + ">" +
                        "<" + tags[3] + ">" +
                        "<" + tags[4] + ">" + rng.Pick(kNames) + "</" + tags[4] + ">" +
                        "<" + tags[5] + ">" + phone + "</" + tags[5] + ">" +
                        "</" + tags[3] + ">" +
                        "</" + tags[0] + ">";
      source.listings.push_back(ParseXml(xml).value());
    }
    return source;
  }

  std::unique_ptr<LsdSystem> MakeTrainedSystem(LsdConfig config = LsdConfig()) {
    auto system = std::make_unique<LsdSystem>(mediated_, config);
    EXPECT_TRUE(system->AddTrainingSource(source_a_, gold_a_).ok());
    EXPECT_TRUE(system->AddTrainingSource(source_b_, gold_b_).ok());
    EXPECT_TRUE(system->Train().ok());
    return system;
  }

  Dtd mediated_;
  DataSource source_a_, source_b_, target_;
  Mapping gold_a_, gold_b_;
};

TEST_F(RobustnessSystemTest, TrainFaultQuarantinesLearnerDeterministically) {
  std::string baseline;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    FaultInjector injector;
    injector.FailMatching(FaultSite::kLearnerTrain, kNaiveBayesName,
                          Status::Internal("training exploded"));
    ScopedFaultInjection scoped(&injector);
    LsdConfig config;
    config.num_threads = threads;
    auto system = MakeTrainedSystem(config);
    ASSERT_TRUE(system->trained());
    EXPECT_TRUE(system->train_report().IsQuarantined(kNaiveBayesName));
    EXPECT_EQ(system->QuarantinedLearners(),
              std::vector<std::string>{kNaiveBayesName});

    auto result = system->MatchSource(target_);
    ASSERT_TRUE(result.ok()) << threads << " threads";
    EXPECT_TRUE(result->report.degraded());
    EXPECT_TRUE(result->report.IsQuarantined(kNaiveBayesName));
    EXPECT_NE(result->report.ToString().find(kNaiveBayesName),
              std::string::npos);

    // Degraded output is bit-identical for any thread count.
    std::string rendered =
        result->mapping.ToString() + "\n" + result->report.ToString();
    if (baseline.empty()) {
      baseline = rendered;
    } else {
      EXPECT_EQ(rendered, baseline) << threads << " threads";
    }

    // A degraded ensemble must not be persisted.
    Status saved = system->SaveModel("/tmp/lsd_degraded_model.txt");
    EXPECT_EQ(saved.code(), StatusCode::kFailedPrecondition);
  }
}

TEST_F(RobustnessSystemTest, PredictFaultQuarantinesLearnerDeterministically) {
  std::string baseline;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    FaultInjector injector;
    injector.FailMatching(FaultSite::kLearnerPredict,
                          std::string(kContentMatcherName) + "/",
                          Status::Internal("predict exploded"));
    ScopedFaultInjection scoped(&injector);
    LsdConfig config;
    config.num_threads = threads;
    auto system = MakeTrainedSystem(config);
    EXPECT_FALSE(system->train_report().degraded());

    auto result = system->MatchSource(target_);
    ASSERT_TRUE(result.ok()) << threads << " threads";
    EXPECT_TRUE(result->report.IsQuarantined(kContentMatcherName));
    std::string rendered =
        result->mapping.ToString() + "\n" + result->report.ToString();
    if (baseline.empty()) {
      baseline = rendered;
    } else {
      EXPECT_EQ(rendered, baseline) << threads << " threads";
    }
  }
}

TEST_F(RobustnessSystemTest, AllLearnersFailingIsAHardError) {
  {
    FaultInjector injector;
    injector.FailMatching(FaultSite::kLearnerTrain, "",
                          Status::Internal("everything exploded"));
    ScopedFaultInjection scoped(&injector);
    LsdSystem system(mediated_, LsdConfig());
    ASSERT_TRUE(system.AddTrainingSource(source_a_, gold_a_).ok());
    Status status = system.Train();
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("every learner failed"),
              std::string::npos);
  }
  {
    FaultInjector injector;
    injector.FailMatching(FaultSite::kLearnerPredict, "",
                          Status::Internal("everything exploded"));
    auto system = MakeTrainedSystem();
    ScopedFaultInjection scoped(&injector);
    auto result = system->MatchSource(target_);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST_F(RobustnessSystemTest, ZeroDeadlineYieldsAnytimeMappingNotError) {
  auto system = MakeTrainedSystem();
  MatchOptions options;
  options.deadline = Deadline::AfterMillis(0);
  // Feedback forces the constraint handler (and so the A* searcher) to run.
  std::vector<FeedbackConstraint> feedback;
  feedback.emplace_back("area", "ADDRESS", /*must_equal=*/true);

  auto result = system->MatchSource(target_, options, feedback);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->report.deadline_hit);
  EXPECT_TRUE(result->search_truncated);
  EXPECT_EQ(result->tags.size(), 6u);
  // The greedy anytime completion still assigns every tag and respects
  // the feedback constraint.
  EXPECT_EQ(result->mapping.LabelOrOther("area"), "ADDRESS");

  // An infinite deadline on the same system is a clean run.
  auto unbounded = system->MatchSource(target_, MatchOptions(), feedback);
  ASSERT_TRUE(unbounded.ok());
  EXPECT_FALSE(unbounded->report.deadline_hit);
}

TEST_F(RobustnessSystemTest, ExpiredTrainingDeadlineIsDeadlineExceeded) {
  LsdSystem system(mediated_, LsdConfig());
  ASSERT_TRUE(system.AddTrainingSource(source_a_, gold_a_).ok());
  Status status = system.Train(Deadline::AfterMillis(0));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(system.trained());
}

// ---------------------------------------------------------------------------
// Seam completeness: every FaultSite value must be reachable from the
// standard pipeline (read source text, parse, train on a pool with
// checkpointing, persist the model, reload, match). A newly added seam
// that the pipeline never crosses fails here instead of going untested.

TEST_F(RobustnessSystemTest, EveryFaultSeamFiresUnderTheStandardPipeline) {
  // Trained cleanly up front so the prediction seam has a system to run.
  auto clean = MakeTrainedSystem();

  for (FaultSite site : kAllFaultSites) {
    SCOPED_TRACE(FaultSiteName(site));
    FaultInjector injector(5);
    injector.FailMatching(site, "", Status::Internal("seam probe"));
    ScopedFaultInjection scoped(&injector);

    // File seams: an atomic write + read-back.
    std::string probe = ::testing::TempDir() + "/lsd_seam_probe.txt";
    (void)WriteStringToFile(probe, "probe");
    (void)ReadFileToString(probe);

    // Parser seams.
    (void)ParseXmlLenient("<a>x</a>");
    (void)ParseDtdLenient("<!ELEMENT a (#PCDATA)>");

    // Training seams: learners + pool tasks (threads > 1 so the pool's
    // deferred path runs too); checkpointing crosses the file seams again.
    LsdConfig config;
    config.num_threads = 2;
    config.checkpoint_dir = ::testing::TempDir() + "/lsd_seam_ckpt";
    LsdSystem trainee(mediated_, config);
    (void)trainee.AddTrainingSource(source_a_, gold_a_);
    (void)trainee.Train();

    // Persistence + prediction seams on the clean system.
    std::string model = ::testing::TempDir() + "/lsd_seam_model.artifact";
    (void)clean->SaveModel(model);
    (void)clean->MatchSource(target_);

    // Service seams: one request through a tiny single-worker service.
    // Under blanket rules for other sites the replica factory itself may
    // fail (e.g. learner-train faults); that is fine — those sites already
    // fired upstream.
    MatchServiceOptions service_options;
    service_options.workers = 1;
    service_options.max_queue_depth = 2;
    service_options.backoff.max_retries = 0;
    service_options.breaker.failure_threshold = 0;
    service_options.sleep_millis = [](int64_t) {};
    // A golden request makes Reload() cross the shadow-eval seam; the
    // swap attempt itself crosses the model-swap seam.
    ServiceRequest golden;
    golden.id = "seam-golden";
    golden.dtd_text =
        "<!ELEMENT home (area, reach)>"
        "<!ELEMENT area (#PCDATA)>"
        "<!ELEMENT reach (#PCDATA)>";
    golden.xml_text =
        "<listings><home><area>Miami, FL</area>"
        "<reach>(555) 123 4567</reach></home></listings>";
    service_options.golden_requests.push_back(golden);
    auto factory = [this]() -> StatusOr<std::unique_ptr<LsdSystem>> {
      auto system = std::make_unique<LsdSystem>(mediated_, LsdConfig());
      LSD_RETURN_IF_ERROR(system->AddTrainingSource(source_a_, gold_a_));
      LSD_RETURN_IF_ERROR(system->Train());
      return StatusOr<std::unique_ptr<LsdSystem>>(std::move(system));
    };
    auto service = MatchService::Create(factory, service_options);
    if (service.ok()) {
      ServiceRequest request;
      request.id = "seam-probe";
      request.dtd_text = golden.dtd_text;
      request.xml_text = golden.xml_text;
      (void)(*service)->Process(std::move(request));
      MatchService::ReloadOptions reload;
      reload.factory = factory;
      (void)(*service)->Reload(std::move(reload));

      // Network seams: one request through a loopback NetServer in front
      // of the same service. Under blanket accept/read/write rules the
      // call fails after the client's retries — reaching the seam is the
      // point, not the outcome.
      auto server = net::NetServer::Create(service->get(), net::NetServerOptions());
      if (server.ok()) {
        net::NetClientOptions client_options;
        client_options.port = (*server)->port();
        client_options.backoff.max_retries = 1;
        client_options.backoff.initial_ms = 1;
        client_options.backoff.max_ms = 1;
        net::NetClient client(client_options);
        net::WireRequest wire;
        wire.id = "seam-net-probe";
        wire.dtd_text = golden.dtd_text;
        wire.xml_text = golden.xml_text;
        (void)client.Call(wire);
        (*server)->Stop();
      }
    }

    EXPECT_GE(injector.injected_count(), 1u);
    std::remove(probe.c_str());
    std::remove(model.c_str());
    std::remove((model + ".lastgood").c_str());
  }
}

// ---------------------------------------------------------------------------
// Crash-safe persistence: the corruption matrix over every durable
// artifact kind, mid-write faults, torn saves, and last-good recovery.

// Asserts that every truncation point and a sweep of single-bit flips of
// `bytes` is classified by the decoder — one of the documented taxonomy
// codes, never success, never a crash.
void ExpectCorruptionClassified(const std::string& bytes,
                                const std::string& kind) {
  SCOPED_TRACE(kind);
  auto classified = [](StatusCode code) {
    return code == StatusCode::kParseError ||
           code == StatusCode::kFailedPrecondition ||
           code == StatusCode::kOutOfRange || code == StatusCode::kDataLoss ||
           code == StatusCode::kInvalidArgument;
  };
  size_t stride = bytes.size() / 64 + 1;
  for (size_t keep = 0; keep < bytes.size(); keep += stride) {
    StatusOr<Artifact> decoded =
        DecodeArtifact(std::string_view(bytes).substr(0, keep), kind);
    ASSERT_FALSE(decoded.ok()) << "prefix " << keep;
    EXPECT_TRUE(classified(decoded.status().code()))
        << "prefix " << keep << ": " << decoded.status().ToString();
  }
  for (size_t at = 0; at < bytes.size(); at += stride) {
    std::string flipped = bytes;
    flipped[at] ^= 0x20;
    StatusOr<Artifact> decoded = DecodeArtifact(flipped, kind);
    if (decoded.ok()) {
      ADD_FAILURE() << "bit flip at " << at << " decoded successfully";
      continue;
    }
    EXPECT_TRUE(classified(decoded.status().code()))
        << "flip " << at << ": " << decoded.status().ToString();
  }
}

TEST_F(RobustnessSystemTest, CorruptionMatrixCoversEveryArtifactKind) {
  // One real artifact of each durable kind the system writes.
  auto system = MakeTrainedSystem();
  std::string model_path = ::testing::TempDir() + "/lsd_matrix.model";
  std::remove((model_path + ".lastgood").c_str());
  ASSERT_TRUE(system->SaveModel(model_path).ok());
  StatusOr<std::string> model_bytes = ReadFileToString(model_path);
  ASSERT_TRUE(model_bytes.ok());
  ExpectCorruptionClassified(*model_bytes, "model");

  CheckpointManager store(::testing::TempDir() + "/lsd_matrix_ckpt");
  ASSERT_TRUE(store.Open(0xabcdefu, false).ok());
  store.MarkDone("fold/naive-bayes/0");
  store.MarkDone("learner/naive-bayes");
  StatusOr<std::string> manifest_bytes = ReadFileToString(store.ManifestPath());
  ASSERT_TRUE(manifest_bytes.ok());
  ExpectCorruptionClassified(*manifest_bytes, "checkpoint-manifest");

  auto result = system->MatchSource(target_);
  ASSERT_TRUE(result.ok());
  Artifact report;
  report.kind = "run-report";
  report.sections.push_back({"report", result->report.ToString()});
  report.sections.push_back(
      {"metrics", MetricsRegistry::Global().Snapshot().ToJson()});
  ExpectCorruptionClassified(EncodeArtifact(report), "run-report");

  // A corrupt model with no last-good backup is a classified failure at
  // the system level too — never a crash, never a half-loaded system.
  std::string damaged = *model_bytes;
  damaged[damaged.size() / 2] ^= 0x08;
  ASSERT_TRUE(WriteFileAtomic(model_path, damaged).ok());
  LsdSystem fresh(mediated_, LsdConfig());
  Status loaded = fresh.LoadModel(model_path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), StatusCode::kDataLoss);
  EXPECT_FALSE(fresh.trained());
  std::remove(model_path.c_str());
}

TEST_F(RobustnessSystemTest, SaveModelMidWriteFaultLeavesOldModelUntouched) {
  auto system = MakeTrainedSystem();
  std::string path = ::testing::TempDir() + "/lsd_midwrite.model";
  std::remove((path + ".lastgood").c_str());
  ASSERT_TRUE(system->SaveModel(path).ok());
  StatusOr<std::string> before = ReadFileToString(path);
  ASSERT_TRUE(before.ok());

  for (FaultSite site :
       {FaultSite::kFileWrite, FaultSite::kFileSync, FaultSite::kFileRename}) {
    SCOPED_TRACE(FaultSiteName(site));
    FaultInjector injector(9);
    injector.FailMatching(site, "", Status::Internal("mid-write fault"));
    ScopedFaultInjection scoped(&injector);
    EXPECT_FALSE(system->SaveModel(path).ok());
  }
  // After every failed save the primary is byte-identical and loadable.
  StatusOr<std::string> after = ReadFileToString(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before);
  LsdSystem fresh(mediated_, LsdConfig());
  EXPECT_TRUE(fresh.LoadModel(path).ok());
  EXPECT_FALSE(fresh.loaded_from_last_good());
  std::remove(path.c_str());
  std::remove((path + ".lastgood").c_str());
}

TEST_F(RobustnessSystemTest, TornSavePublishesDamageButLastGoodRecovers) {
  auto system = MakeTrainedSystem();
  std::string path = ::testing::TempDir() + "/lsd_torn.model";
  std::remove((path + ".lastgood").c_str());
  ASSERT_TRUE(system->SaveModel(path).ok());

  // A torn write on the second save: the staging bytes land damaged (the
  // writer "succeeds"), the valid first generation rotates to .lastgood.
  {
    FaultInjector injector(13);
    injector.CorruptMatching(".staging", WriteCorruption::kTruncate, 31);
    ScopedFaultInjection scoped(&injector);
    ASSERT_TRUE(system->SaveModel(path).ok());
  }
  ASSERT_TRUE(FileExists(path + ".lastgood"));

  uint64_t recoveries_before =
      MetricsRegistry::Global().Snapshot().CounterOf(
          "artifact.lastgood_recoveries");
  LsdSystem fresh(mediated_, LsdConfig());
  ASSERT_TRUE(fresh.LoadModel(path).ok());
  EXPECT_TRUE(fresh.loaded_from_last_good());
  EXPECT_FALSE(fresh.train_report().notes.empty());
  EXPECT_GT(MetricsRegistry::Global().Snapshot().CounterOf(
                "artifact.lastgood_recoveries"),
            recoveries_before);
  // The recovered system is fully usable.
  EXPECT_TRUE(fresh.MatchSource(target_).ok());

  // The torn-rename window: no primary at all, only the last-good.
  std::remove(path.c_str());
  LsdSystem fresh2(mediated_, LsdConfig());
  ASSERT_TRUE(fresh2.LoadModel(path).ok());
  EXPECT_TRUE(fresh2.loaded_from_last_good());
  std::remove((path + ".lastgood").c_str());
}

TEST_F(RobustnessSystemTest, ConfigMismatchDoesNotTriggerLastGoodFallback) {
  auto system = MakeTrainedSystem();
  std::string path = ::testing::TempDir() + "/lsd_mismatch.model";
  std::remove((path + ".lastgood").c_str());
  ASSERT_TRUE(system->SaveModel(path).ok());
  ASSERT_TRUE(system->SaveModel(path).ok());  // rotates a last-good into place
  ASSERT_TRUE(FileExists(path + ".lastgood"));

  // A wrong roster means the caller asked for the wrong model; falling
  // back to the (equally mismatched) backup would only mask the bug.
  LsdConfig other_roster;
  other_roster.use_format_learner = true;
  LsdSystem fresh(mediated_, other_roster);
  Status loaded = fresh.LoadModel(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(fresh.loaded_from_last_good());
  std::remove(path.c_str());
  std::remove((path + ".lastgood").c_str());
}

// ---------------------------------------------------------------------------
// Checkpoint/resume: an interrupted training run resumed from its
// checkpoints produces a bit-identical model, at every thread count.

TEST_F(RobustnessSystemTest, ResumedTrainingIsBitIdenticalAcrossThreadCounts) {
  // Baseline: one uninterrupted, checkpoint-free run.
  auto baseline_system = MakeTrainedSystem();
  std::string baseline_path = ::testing::TempDir() + "/lsd_resume_base.model";
  std::remove((baseline_path + ".lastgood").c_str());
  ASSERT_TRUE(baseline_system->SaveModel(baseline_path).ok());
  StatusOr<std::string> baseline = ReadFileToString(baseline_path);
  ASSERT_TRUE(baseline.ok());
  std::remove(baseline_path.c_str());

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(threads);
    std::string dir =
        ::testing::TempDir() + "/lsd_resume_ckpt_" + std::to_string(threads);

    // "Kill" a run mid-training: naive-bayes dies before it can finish, so
    // its work never reaches the checkpoint directory while every other
    // learner's folds and final model do.
    {
      FaultInjector injector;
      injector.FailMatching(FaultSite::kLearnerTrain, kNaiveBayesName,
                            Status::Internal("simulated crash"));
      ScopedFaultInjection scoped(&injector);
      LsdConfig config;
      config.num_threads = threads;
      config.checkpoint_dir = dir;
      LsdSystem interrupted(mediated_, config);
      ASSERT_TRUE(interrupted.AddTrainingSource(source_a_, gold_a_).ok());
      ASSERT_TRUE(interrupted.AddTrainingSource(source_b_, gold_b_).ok());
      ASSERT_TRUE(interrupted.Train().ok());
      EXPECT_TRUE(interrupted.train_report().IsQuarantined(kNaiveBayesName));
    }

    // Resume: the same training problem adopts the checkpoints, restores
    // the finished learners, and redoes only the lost work.
    uint64_t restored_before = MetricsRegistry::Global().Snapshot().CounterOf(
        "checkpoint.learners_restored");
    LsdConfig config;
    config.num_threads = threads;
    config.checkpoint_dir = dir;
    config.resume_from_checkpoint = true;
    LsdSystem resumed(mediated_, config);
    ASSERT_TRUE(resumed.AddTrainingSource(source_a_, gold_a_).ok());
    ASSERT_TRUE(resumed.AddTrainingSource(source_b_, gold_b_).ok());
    ASSERT_TRUE(resumed.Train().ok());
    EXPECT_TRUE(resumed.QuarantinedLearners().empty());
    EXPECT_GT(MetricsRegistry::Global().Snapshot().CounterOf(
                  "checkpoint.learners_restored"),
              restored_before);

    std::string path = ::testing::TempDir() + "/lsd_resume_" +
                       std::to_string(threads) + ".model";
    std::remove((path + ".lastgood").c_str());
    ASSERT_TRUE(resumed.SaveModel(path).ok());
    StatusOr<std::string> resumed_bytes = ReadFileToString(path);
    ASSERT_TRUE(resumed_bytes.ok());
    EXPECT_EQ(*resumed_bytes, *baseline);
    std::remove(path.c_str());
  }
}

TEST_F(RobustnessSystemTest, CheckpointWriteFaultsDegradeButDoNotFailTraining) {
  std::string baseline;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(threads);
    FaultInjector injector;
    injector.FailMatching(FaultSite::kFileSync, "lsd_ckpt_faulted",
                          Status::Internal("disk full"));
    ScopedFaultInjection scoped(&injector);
    LsdConfig config;
    config.num_threads = threads;
    config.checkpoint_dir = ::testing::TempDir() + "/lsd_ckpt_faulted_" +
                            std::to_string(threads);
    LsdSystem system(mediated_, config);
    ASSERT_TRUE(system.AddTrainingSource(source_a_, gold_a_).ok());
    ASSERT_TRUE(system.AddTrainingSource(source_b_, gold_b_).ok());
    // Every checkpoint write fails, yet training completes cleanly and
    // deterministically; the loss is noted, not fatal.
    ASSERT_TRUE(system.Train().ok());
    EXPECT_TRUE(system.QuarantinedLearners().empty());
    bool noted = false;
    for (const std::string& note : system.train_report().notes) {
      if (note.find("checkpoint") != std::string::npos) noted = true;
    }
    EXPECT_TRUE(noted);
    auto result = system.MatchSource(target_);
    ASSERT_TRUE(result.ok());
    std::string rendered = result->mapping.ToString();
    if (baseline.empty()) {
      baseline = rendered;
    } else {
      EXPECT_EQ(rendered, baseline);
    }
  }
}

}  // namespace
}  // namespace lsd
