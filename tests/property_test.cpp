// Property-based tests: randomized inputs checked against invariants
// rather than fixed expectations. Seeds are fixed, so failures reproduce.

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/strings.h"
#include "constraints/astar_searcher.h"
#include "constraints/constraint.h"
#include "gtest/gtest.h"
#include "ml/meta_learner.h"
#include "ml/naive_bayes.h"
#include "ml/prediction.h"
#include "ml/whirl.h"
#include "text/stemmer.h"
#include "text/tokenizer.h"
#include "xml/dtd_parser.h"
#include "xml/xml.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace lsd {
namespace {

// ---------------------------------------------------------------------------
// XML write→parse round trip on random trees
// ---------------------------------------------------------------------------

std::string RandomToken(Rng* rng) {
  static const std::vector<std::string> kWords = {
      "house", "price", "agent", "great",  "view", "123", "a&b", "<tag>",
      "it's",  "99%",   "x=y",   "\"quo\"", "semi;colon"};
  return rng->Pick(kWords);
}

XmlNode RandomTree(Rng* rng, int depth) {
  static const std::vector<std::string> kNames = {"a", "b", "c", "item",
                                                  "node-x", "deep_tag"};
  XmlNode node(rng->Pick(kNames));
  if (rng->Bernoulli(0.4)) {
    node.attributes.emplace_back("k" + std::to_string(rng->UniformInt(0, 3)),
                                 RandomToken(rng));
  }
  if (depth <= 0 || rng->Bernoulli(0.4)) {
    // Leaf with (possibly empty) text.
    if (rng->Bernoulli(0.8)) {
      node.text = RandomToken(rng) + " " + RandomToken(rng);
    }
    return node;
  }
  int n_children = static_cast<int>(rng->UniformInt(1, 3));
  for (int i = 0; i < n_children; ++i) {
    node.children.push_back(RandomTree(rng, depth - 1));
  }
  return node;
}

class XmlRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(XmlRoundTripTest, WriteParseIsIdentity) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  XmlNode tree = RandomTree(&rng, 4);
  for (bool pretty : {true, false}) {
    XmlWriteOptions options;
    options.pretty = pretty;
    auto parsed = ParseXmlElement(WriteXml(tree, options));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(*parsed, tree) << "pretty=" << pretty;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripTest, ::testing::Range(0, 25));

// ---------------------------------------------------------------------------
// Tokenizer invariants
// ---------------------------------------------------------------------------

class TokenizerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TokenizerPropertyTest, TokensNonEmptyAndClassified) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  std::string text;
  for (int i = 0; i < 30; ++i) {
    text += RandomToken(&rng);
    text += rng.Bernoulli(0.3) ? ", " : " ";
  }
  for (const std::string& token : Tokenize(text)) {
    ASSERT_FALSE(token.empty());
    // A token is a word (all lower alpha after stemming), a number, or a
    // single symbol character.
    bool word = std::all_of(token.begin(), token.end(), [](char c) {
      return c >= 'a' && c <= 'z';
    });
    bool number = IsAllDigits(token);
    bool symbol = token.size() == 1 &&
                  std::string("$%#@/:()-").find(token[0]) != std::string::npos;
    EXPECT_TRUE(word || number || symbol) << "token: '" << token << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenizerPropertyTest, ::testing::Range(0, 10));

TEST(StemmerPropertyTest, DeterministicAndNonEmptyOnWords) {
  // Porter is famously *not* idempotent ("houses"→"hous"→"hou"), but it
  // must be deterministic and never erase a word entirely.
  static const std::vector<std::string> kWords = {
      "houses",   "listings", "fantastic", "beautiful", "locations",
      "agencies", "running",  "hoping",    "relational", "connections",
      "described", "matching", "learning", "schemas",    "constraints"};
  for (const std::string& word : kWords) {
    std::string once = PorterStem(word);
    EXPECT_FALSE(once.empty()) << word;
    EXPECT_EQ(PorterStem(word), once) << word;
    EXPECT_LE(once.size(), word.size()) << word;
  }
}

// ---------------------------------------------------------------------------
// Classifier output invariants
// ---------------------------------------------------------------------------

std::vector<std::vector<std::string>> RandomCorpus(Rng* rng, size_t docs) {
  std::vector<std::vector<std::string>> corpus;
  for (size_t d = 0; d < docs; ++d) {
    std::vector<std::string> doc;
    size_t len = static_cast<size_t>(rng->UniformInt(1, 8));
    for (size_t w = 0; w < len; ++w) {
      doc.push_back("w" + std::to_string(rng->UniformInt(0, 20)));
    }
    corpus.push_back(std::move(doc));
  }
  return corpus;
}

class ClassifierPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ClassifierPropertyTest, PredictionsAreDistributions) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 5000);
  const size_t n_labels = static_cast<size_t>(rng.UniformInt(2, 6));
  auto corpus = RandomCorpus(&rng, 40);
  std::vector<int> labels;
  for (size_t d = 0; d < corpus.size(); ++d) {
    labels.push_back(static_cast<int>(
        rng.UniformInt(0, static_cast<int64_t>(n_labels) - 1)));
  }
  NaiveBayesClassifier nb;
  ASSERT_TRUE(nb.Train(corpus, labels, n_labels).ok());
  WhirlClassifier whirl;
  ASSERT_TRUE(whirl.Train(corpus, labels, n_labels).ok());
  for (int q = 0; q < 10; ++q) {
    auto query = RandomCorpus(&rng, 1)[0];
    for (const Prediction& p : {nb.Predict(query), whirl.Predict(query)}) {
      ASSERT_EQ(p.size(), n_labels);
      double total = 0;
      for (double s : p.scores) {
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 1.0 + 1e-9);
        total += s;
      }
      EXPECT_NEAR(total, 1.0, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassifierPropertyTest,
                         ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// A* optimality against brute force on small random problems
// ---------------------------------------------------------------------------

struct SmallProblem {
  Dtd schema;
  LabelSpace labels;
  std::vector<Prediction> predictions;
  ConstraintSet constraints;
};

SmallProblem MakeSmallProblem(Rng* rng) {
  SmallProblem problem;
  // Flat schema: root with 4 leaf children (5 tags total).
  std::vector<ContentParticle> parts;
  for (int i = 0; i < 4; ++i) {
    parts.push_back(ContentParticle::Element("t" + std::to_string(i)));
  }
  EXPECT_TRUE(
      problem.schema.AddElement({"root", ContentParticle::Sequence(parts)})
          .ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(problem.schema
                    .AddElement({"t" + std::to_string(i),
                                 ContentParticle::Pcdata()})
                    .ok());
  }
  problem.labels = LabelSpace({"A", "B", "C"});
  for (int t = 0; t < 5; ++t) {
    Prediction p(problem.labels.size());
    for (double& s : p.scores) s = rng->Uniform(0.05, 1.0);
    p.Normalize();
    problem.predictions.push_back(std::move(p));
  }
  // Random at-most-one constraints.
  for (const char* label : {"A", "B"}) {
    if (rng->Bernoulli(0.7)) {
      problem.constraints.Add(
          std::make_unique<FrequencyConstraint>(label, 0, 1));
    }
  }
  if (rng->Bernoulli(0.5)) {
    problem.constraints.Add(std::make_unique<FrequencyConstraint>("C", 1, 2));
  }
  if (rng->Bernoulli(0.5)) {
    problem.constraints.Add(
        std::make_unique<CountLimitSoftConstraint>("OTHER", 1, 0.4));
  }
  return problem;
}

// Exhaustive minimum over all |labels|^|tags| assignments.
double BruteForceBestCost(const SmallProblem& problem,
                          const ConstraintContext& context, double alpha,
                          double floor) {
  const size_t n_tags = context.tags().size();
  const size_t n_labels = problem.labels.size();
  size_t total = 1;
  for (size_t t = 0; t < n_tags; ++t) total *= n_labels;
  double best = kInfiniteCost;
  for (size_t code = 0; code < total; ++code) {
    Assignment assignment(n_tags);
    size_t rest = code;
    double prob_cost = 0;
    for (size_t t = 0; t < n_tags; ++t) {
      int label = static_cast<int>(rest % n_labels);
      rest /= n_labels;
      assignment.labels[t] = label;
      prob_cost +=
          -alpha * std::log(std::max(
                       problem.predictions[t].scores[static_cast<size_t>(label)],
                       floor));
    }
    double constraint_cost = problem.constraints.TotalCost(
        assignment, problem.labels, context);
    if (constraint_cost == kInfiniteCost) continue;
    best = std::min(best, prob_cost + constraint_cost);
  }
  return best;
}

class AStarOptimalityTest : public ::testing::TestWithParam<int> {};

TEST_P(AStarOptimalityTest, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 31337);
  SmallProblem problem = MakeSmallProblem(&rng);
  ConstraintContext context(&problem.schema, nullptr);
  AStarOptions options;
  options.beam_width = 0;  // consider every label: exact search
  AStarSearcher searcher(options);
  auto result = searcher.Search(problem.predictions, problem.constraints,
                                problem.labels, context);
  ASSERT_TRUE(result.ok());
  double brute = BruteForceBestCost(problem, context, options.alpha,
                                    options.score_floor);
  if (brute == kInfiniteCost) {
    EXPECT_TRUE(result->truncated);  // no feasible assignment exists
  } else {
    ASSERT_FALSE(result->truncated);
    EXPECT_NEAR(result->cost, brute, 1e-9);
    // And the returned assignment really has that cost.
    double check = problem.constraints.TotalCost(result->assignment,
                                                 problem.labels, context);
    ASSERT_NE(check, kInfiniteCost);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AStarOptimalityTest, ::testing::Range(0, 20));

// ---------------------------------------------------------------------------
// Constraint monotonicity (the property A* relies on)
// ---------------------------------------------------------------------------

class MonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(MonotonicityTest, ExtendingNeverLowersCost) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 999);
  SmallProblem problem = MakeSmallProblem(&rng);
  ConstraintContext context(&problem.schema, nullptr);
  const size_t n_tags = context.tags().size();
  // Random fill order and labels.
  std::vector<size_t> order(n_tags);
  for (size_t i = 0; i < n_tags; ++i) order[i] = i;
  rng.Shuffle(&order);
  Assignment assignment(n_tags);
  double previous =
      problem.constraints.TotalCost(assignment, problem.labels, context);
  for (size_t t : order) {
    assignment.labels[t] = static_cast<int>(
        rng.UniformInt(0, static_cast<int64_t>(problem.labels.size()) - 1));
    double current =
        problem.constraints.TotalCost(assignment, problem.labels, context);
    if (previous == kInfiniteCost) {
      EXPECT_EQ(current, kInfiniteCost);
    } else if (current != kInfiniteCost) {
      EXPECT_GE(current, previous - 1e-12);
    }
    previous = current;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicityTest, ::testing::Range(0, 20));

// ---------------------------------------------------------------------------
// Model serialization round trips: Serialize → Deserialize → Serialize must
// be byte-identical, over vocabularies hostile to a line-oriented format —
// whitespace tokens, empty tokens, '%', UTF-8.
// ---------------------------------------------------------------------------

/// Tokens a naive "write it verbatim" serializer corrupts: embedded and
/// leading/trailing whitespace, the escape character itself, control bytes,
/// multi-byte UTF-8, and the empty string.
std::string HostileToken(Rng* rng) {
  static const std::vector<std::string> kTokens = {
      "",       " ",      "\t",        "\n",       "a b",   " lead",
      "trail ", "%",      "100%",      "%20",      "na\xc3\xafve",
      "\xe6\x97\xa5\xe6\x9c\xac\xe8\xaa\x9e",      "plain", "x",
      "two  spaces"};
  return rng->Pick(kTokens);
}

std::vector<std::vector<std::string>> HostileCorpus(Rng* rng, size_t docs) {
  std::vector<std::vector<std::string>> corpus;
  for (size_t d = 0; d < docs; ++d) {
    std::vector<std::string> doc;
    size_t len = static_cast<size_t>(rng->UniformInt(1, 6));
    for (size_t w = 0; w < len; ++w) doc.push_back(HostileToken(rng));
    corpus.push_back(std::move(doc));
  }
  return corpus;
}

class SerializationRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(SerializationRoundTripTest, NaiveBayesBytesStable) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 9000);
  const size_t n_labels = static_cast<size_t>(rng.UniformInt(2, 5));
  auto corpus = HostileCorpus(&rng, 30);
  std::vector<int> labels;
  for (size_t d = 0; d < corpus.size(); ++d) {
    labels.push_back(static_cast<int>(
        rng.UniformInt(0, static_cast<int64_t>(n_labels) - 1)));
  }
  NaiveBayesClassifier nb;
  ASSERT_TRUE(nb.Train(corpus, labels, n_labels).ok());
  std::string first = nb.Serialize();
  auto restored = NaiveBayesClassifier::Deserialize(first);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->Serialize(), first);
  // The restored model is behaviorally identical too.
  auto query = HostileCorpus(&rng, 1)[0];
  EXPECT_EQ(restored->Predict(query).scores, nb.Predict(query).scores);
}

TEST_P(SerializationRoundTripTest, WhirlBytesStable) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 9500);
  const size_t n_labels = static_cast<size_t>(rng.UniformInt(2, 5));
  auto corpus = HostileCorpus(&rng, 30);
  std::vector<int> labels;
  for (size_t d = 0; d < corpus.size(); ++d) {
    labels.push_back(static_cast<int>(
        rng.UniformInt(0, static_cast<int64_t>(n_labels) - 1)));
  }
  WhirlClassifier whirl;
  ASSERT_TRUE(whirl.Train(corpus, labels, n_labels).ok());
  std::string first = whirl.Serialize();
  auto restored = WhirlClassifier::Deserialize(first);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->Serialize(), first);
  auto query = HostileCorpus(&rng, 1)[0];
  EXPECT_EQ(restored->Predict(query).scores, whirl.Predict(query).scores);
}

TEST_P(SerializationRoundTripTest, MetaLearnerBytesStable) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 9900);
  const size_t n_labels = static_cast<size_t>(rng.UniformInt(2, 5));
  const size_t n_learners = static_cast<size_t>(rng.UniformInt(2, 4));
  const size_t n_examples = 25;
  std::vector<std::vector<Prediction>> cv_predictions(n_learners);
  for (auto& per_learner : cv_predictions) {
    for (size_t x = 0; x < n_examples; ++x) {
      Prediction p(n_labels);
      double total = 0;
      for (double& s : p.scores) {
        s = rng.Uniform();
        total += s;
      }
      for (double& s : p.scores) s /= total;
      per_learner.push_back(std::move(p));
    }
  }
  std::vector<int> true_labels;
  for (size_t x = 0; x < n_examples; ++x) {
    true_labels.push_back(static_cast<int>(
        rng.UniformInt(0, static_cast<int64_t>(n_labels) - 1)));
  }
  MetaLearner meta;
  ASSERT_TRUE(meta.Train(cv_predictions, true_labels, n_labels).ok());
  std::string first = meta.Serialize();
  auto restored = MetaLearner::Deserialize(first);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->Serialize(), first);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationRoundTripTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace lsd
