#include <cmath>
#include <memory>

#include "gtest/gtest.h"
#include "ml/cross_validation.h"
#include "ml/learner.h"
#include "ml/meta_learner.h"
#include "ml/naive_bayes.h"
#include "ml/prediction.h"
#include "ml/prediction_converter.h"
#include "ml/whirl.h"

namespace lsd {
namespace {

// ---------------------------------------------------------------------------
// LabelSpace / Prediction
// ---------------------------------------------------------------------------

TEST(LabelSpaceTest, AppendsOtherAutomatically) {
  LabelSpace labels({"ADDRESS", "PRICE"});
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels.NameOf(labels.other_index()), "OTHER");
  EXPECT_EQ(labels.IndexOf("PRICE"), 1);
  EXPECT_EQ(labels.IndexOf("missing"), -1);
}

TEST(LabelSpaceTest, DoesNotDuplicateOther) {
  LabelSpace labels({"A", "OTHER", "B"});
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels.other_index(), 1);
}

TEST(PredictionTest, UniformAndPointMass) {
  Prediction u = Prediction::Uniform(4);
  for (double s : u.scores) EXPECT_DOUBLE_EQ(s, 0.25);
  Prediction p = Prediction::PointMass(4, 2);
  EXPECT_EQ(p.Best(), 2);
  EXPECT_DOUBLE_EQ(p.ScoreOf(2), 1.0);
}

TEST(PredictionDeathTest, PointMassRejectsOutOfRangeLabel) {
  // LabelSpace::IndexOf returns -1 for unknown labels; feeding that (or any
  // out-of-range index) to PointMass must abort rather than scribble out of
  // bounds.
  EXPECT_DEATH(Prediction::PointMass(4, -1), "CHECK failed");
  EXPECT_DEATH(Prediction::PointMass(4, 4), "CHECK failed");
}

TEST(PredictionTest, BestBreaksTiesLow) {
  Prediction p(3);
  p.scores = {0.4, 0.4, 0.2};
  EXPECT_EQ(p.Best(), 0);
  EXPECT_EQ(Prediction().Best(), -1);
}

TEST(PredictionTest, NormalizeClampsNegatives) {
  Prediction p(3);
  p.scores = {-1.0, 1.0, 3.0};
  p.Normalize();
  EXPECT_DOUBLE_EQ(p.scores[0], 0.0);
  EXPECT_DOUBLE_EQ(p.scores[1], 0.25);
  EXPECT_DOUBLE_EQ(p.scores[2], 0.75);
}

TEST(PredictionTest, AveragePredictions) {
  Prediction a(2), b(2);
  a.scores = {1.0, 0.0};
  b.scores = {0.0, 1.0};
  auto avg = AveragePredictions({a, b});
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(avg->scores[0], 0.5);
  EXPECT_FALSE(AveragePredictions({}).ok());
  Prediction c(3);
  EXPECT_FALSE(AveragePredictions({a, c}).ok());
}

// ---------------------------------------------------------------------------
// Naive Bayes
// ---------------------------------------------------------------------------

TEST(NaiveBayesTest, LearnsTokenFrequencies) {
  NaiveBayesClassifier nb;
  std::vector<std::vector<std::string>> docs = {
      {"fantastic", "great", "location"},
      {"beautiful", "great", "yard"},
      {"206", "523", "4719"},
      {"305", "729", "0831"},
  };
  std::vector<int> labels = {0, 0, 1, 1};
  ASSERT_TRUE(nb.Train(docs, labels, 2).ok());
  EXPECT_EQ(nb.Predict({"great", "fantastic", "view"}).Best(), 0);
  EXPECT_EQ(nb.Predict({"305", "523", "1429"}).Best(), 1);
}

TEST(NaiveBayesTest, PredictionIsDistribution) {
  NaiveBayesClassifier nb;
  ASSERT_TRUE(nb.Train({{"a"}, {"b"}}, {0, 1}, 2).ok());
  Prediction p = nb.Predict({"a", "b", "c"});
  double total = 0;
  for (double s : p.scores) {
    EXPECT_GE(s, 0.0);
    total += s;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(NaiveBayesTest, PriorsMatterForUnknownTokens) {
  NaiveBayesClassifier nb;
  // Equal token mass per class (so unseen-token smoothing cancels) but
  // three docs for class 0 vs one for class 1: priors favor 0.
  ASSERT_TRUE(
      nb.Train({{"x"}, {"x"}, {"x"}, {"y", "y", "y"}}, {0, 0, 0, 1}, 2).ok());
  EXPECT_EQ(nb.Predict({"unseen", "tokens"}).Best(), 0);
}

TEST(NaiveBayesTest, InputValidation) {
  NaiveBayesClassifier nb;
  EXPECT_FALSE(nb.Train({{"a"}}, {0, 1}, 2).ok());       // size mismatch
  EXPECT_FALSE(nb.Train({}, {}, 2).ok());                // empty
  EXPECT_FALSE(nb.Train({{"a"}}, {5}, 2).ok());          // label out of range
  EXPECT_FALSE(nb.Train({{"a"}}, {0}, 0).ok());          // no labels
}

TEST(NaiveBayesTest, TokenLogProbMonotoneInCount) {
  NaiveBayesClassifier nb;
  ASSERT_TRUE(nb.Train({{"a", "a", "a", "b"}, {"c"}}, {0, 1}, 2).ok());
  EXPECT_GT(nb.TokenLogProb("a", 0), nb.TokenLogProb("b", 0));
  EXPECT_GT(nb.TokenLogProb("b", 0), nb.TokenLogProb("zzz", 0));
}

TEST(NaiveBayesTest, UntrainedPredictEmpty) {
  NaiveBayesClassifier nb;
  EXPECT_EQ(nb.Predict({"a"}).size(), 0u);
}

TEST(NaiveBayesTest, SerializeEscapesHostileTokens) {
  NaiveBayesClassifier nb;
  // Tokens with whitespace, the escape character, and an empty string —
  // all legal vocabulary entries via lenient-mode parsing.
  ASSERT_TRUE(nb.Train({{"a b", "100%"}, {"", "plain"}}, {0, 1}, 2).ok());
  std::string text = nb.Serialize();
  EXPECT_NE(text.find("token a%20b\n"), std::string::npos);
  EXPECT_NE(text.find("token 100%25\n"), std::string::npos);
  EXPECT_NE(text.find("token %\n"), std::string::npos);  // empty token
  auto restored = NaiveBayesClassifier::Deserialize(text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->Serialize(), text);
}

TEST(NaiveBayesTest, DeserializeRejectsDuplicateVocabularyToken) {
  // A duplicate token would silently remap every later count id; the
  // reader must call the stream corrupt instead.
  const std::string text =
      "nb 2 1 2 2\n"
      "priors -0.5 -0.5\n"
      "totals 2 1\n"
      "token foo\n"
      "token foo\n"
      "counts 0 1 0 2\n"
      "counts 1 1 1 1\n";
  auto restored = NaiveBayesClassifier::Deserialize(text);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().ToString().find("duplicate"),
            std::string::npos);
}

TEST(NaiveBayesTest, ReadsVersion1VerbatimTokens) {
  // Version-1 files wrote tokens verbatim; "100%" must load as the literal
  // three characters, not go through escape decoding.
  const std::string v1 =
      "nb 1 1 2 2\n"
      "priors -0.69 -0.69\n"
      "totals 3 1\n"
      "token cheap\n"
      "token 100%\n"
      "counts 0 2 0 2 1 1\n"
      "counts 1 1 1 1\n";
  auto restored = NaiveBayesClassifier::Deserialize(v1);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_GT(restored->TokenLogProb("100%", 0),
            restored->TokenLogProb("unseen", 0));
  // Re-serializing upgrades to the escaped version-2 format.
  std::string upgraded = restored->Serialize();
  EXPECT_EQ(upgraded.rfind("nb 2 ", 0), 0u);
  EXPECT_NE(upgraded.find("token 100%25\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Whirl
// ---------------------------------------------------------------------------

TEST(WhirlTest, NearestNeighbourByVocabulary) {
  WhirlClassifier whirl;
  std::vector<std::vector<std::string>> docs = {
      {"seattle", "wa"}, {"miami", "fl"},          // label 0: addresses
      {"fantastic", "house"}, {"great", "yard"},   // label 1: descriptions
  };
  ASSERT_TRUE(whirl.Train(docs, {0, 0, 1, 1}, 2).ok());
  EXPECT_EQ(whirl.Predict({"seattle", "downtown"}).Best(), 0);
  EXPECT_EQ(whirl.Predict({"fantastic", "location"}).Best(), 1);
}

TEST(WhirlTest, NoOverlapYieldsUniform) {
  WhirlClassifier whirl;
  ASSERT_TRUE(whirl.Train({{"a"}, {"b"}}, {0, 1}, 2).ok());
  Prediction p = whirl.Predict({"zzz"});
  EXPECT_NEAR(p.scores[0], p.scores[1], 1e-9);
}

TEST(WhirlTest, SimilarityCapKeepsScoresSoft) {
  WhirlClassifier whirl;
  ASSERT_TRUE(whirl.Train({{"exact"}, {"other"}}, {0, 1}, 2).ok());
  Prediction p = whirl.Predict({"exact"});
  EXPECT_EQ(p.Best(), 0);
  EXPECT_LT(p.scores[0], 1.0);  // capped, not a hard 1/0 prediction
  EXPECT_GT(p.scores[0], 0.9);
}

TEST(WhirlTest, KLimitsNeighbours) {
  WhirlOptions options;
  options.k = 1;
  WhirlClassifier whirl(options);
  // Two label-1 docs share a weak token with the query, one label-0 doc
  // matches strongly; with k=1 only the strong one votes.
  ASSERT_TRUE(whirl.Train({{"alpha", "beta", "gamma"},
                           {"alpha", "x"},
                           {"alpha", "y"}},
                          {0, 1, 1}, 2)
                  .ok());
  Prediction p = whirl.Predict({"alpha", "beta", "gamma"});
  EXPECT_EQ(p.Best(), 0);
  EXPECT_LT(p.scores[1], 0.01);  // only the smoothing floor remains
}

TEST(WhirlTest, InputValidation) {
  WhirlClassifier whirl;
  EXPECT_FALSE(whirl.Train({{"a"}}, {0, 1}, 2).ok());
  EXPECT_FALSE(whirl.Train({}, {}, 2).ok());
  EXPECT_FALSE(whirl.Train({{"a"}}, {-1}, 2).ok());
}

TEST(WhirlTest, DeterministicAcrossRuns) {
  auto run = [] {
    WhirlClassifier whirl;
    (void)whirl.Train({{"a", "b"}, {"b", "c"}, {"c", "d"}}, {0, 1, 0}, 2);
    return whirl.Predict({"b", "c", "d"}).scores;
  };
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------------
// Cross-validation
// ---------------------------------------------------------------------------

/// Deterministic learner: predicts the majority label of its training set.
class MajorityLearner : public BaseLearner {
 public:
  std::string name() const override { return "majority"; }
  Status Train(const std::vector<TrainingExample>& examples,
               const LabelSpace& labels) override {
    std::vector<int> counts(labels.size(), 0);
    for (const auto& e : examples) ++counts[static_cast<size_t>(e.label)];
    majority_ = 0;
    for (size_t i = 1; i < counts.size(); ++i) {
      if (counts[i] > counts[static_cast<size_t>(majority_)]) {
        majority_ = static_cast<int>(i);
      }
    }
    n_labels_ = labels.size();
    return Status::OK();
  }
  Prediction Predict(const Instance&) const override {
    return Prediction::PointMass(n_labels_, majority_);
  }
  std::unique_ptr<BaseLearner> CloneUntrained() const override {
    return std::make_unique<MajorityLearner>();
  }

 private:
  int majority_ = 0;
  size_t n_labels_ = 0;
};

std::vector<TrainingExample> MakeExamples(const std::vector<int>& labels) {
  std::vector<TrainingExample> out;
  for (int label : labels) {
    TrainingExample e;
    e.instance.tag_name = "t" + std::to_string(out.size());
    e.label = label;
    out.push_back(e);
  }
  return out;
}

TEST(FoldAssignmentTest, BalancedAndDeterministic) {
  std::vector<size_t> a = MakeFoldAssignment(10, 5, 42);
  std::vector<size_t> b = MakeFoldAssignment(10, 5, 42);
  EXPECT_EQ(a, b);
  std::vector<int> counts(5, 0);
  for (size_t fold : a) ++counts[fold];
  for (int c : counts) EXPECT_EQ(c, 2);
}

TEST(FoldAssignmentTest, GroupedKeepsGroupsTogether) {
  std::vector<int> groups = {7, 7, 7, 3, 3, 9, 9, 9, 9, 5};
  std::vector<size_t> folds = MakeGroupedFoldAssignment(groups, 3, 1);
  EXPECT_EQ(folds[0], folds[1]);
  EXPECT_EQ(folds[1], folds[2]);
  EXPECT_EQ(folds[3], folds[4]);
  EXPECT_EQ(folds[5], folds[6]);
  EXPECT_EQ(folds[6], folds[7]);
  EXPECT_EQ(folds[7], folds[8]);
}

TEST(CrossValidationTest, PredictionsComeFromOtherFolds) {
  // 10 examples of label 0 and 10 of label 1, folds of mixed labels: the
  // majority learner trained without an example's fold still sees both
  // labels, so every prediction must be a valid point mass.
  LabelSpace labels({"A", "B"});
  auto examples = MakeExamples({0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                                1, 1, 1, 1, 1, 1, 1, 1, 1, 1});
  MajorityLearner prototype;
  auto cv = CrossValidatePredictions(prototype, examples, labels);
  ASSERT_TRUE(cv.ok());
  EXPECT_EQ(cv->size(), examples.size());
  for (const Prediction& p : *cv) {
    EXPECT_EQ(p.size(), labels.size());
  }
}

TEST(CrossValidationTest, SingleExampleFallsBackToUniform) {
  LabelSpace labels({"A", "B"});
  auto examples = MakeExamples({0});
  MajorityLearner prototype;
  auto cv = CrossValidatePredictions(prototype, examples, labels);
  ASSERT_TRUE(cv.ok());
  EXPECT_NEAR((*cv)[0].scores[0], 1.0 / 3, 1e-9);
}

TEST(CrossValidationTest, EmptyFails) {
  LabelSpace labels({"A"});
  MajorityLearner prototype;
  EXPECT_FALSE(CrossValidatePredictions(prototype, {}, labels).ok());
}

TEST(CrossValidationTest, GroupSizeMismatchFails) {
  LabelSpace labels({"A"});
  MajorityLearner prototype;
  CrossValidationOptions options;
  options.group_ids = {1, 2};
  EXPECT_FALSE(
      CrossValidatePredictions(prototype, MakeExamples({0}), labels, options)
          .ok());
}

// ---------------------------------------------------------------------------
// Meta-learner
// ---------------------------------------------------------------------------

TEST(MetaLearnerTest, WeightsTrackLearnerQuality) {
  // Learner 0 is a perfect predictor, learner 1 is anti-correlated.
  const size_t n = 40;
  std::vector<int> truth(n);
  std::vector<std::vector<Prediction>> cv(2);
  for (size_t i = 0; i < n; ++i) {
    truth[i] = static_cast<int>(i % 2);
    Prediction good(2), bad(2);
    good.scores[static_cast<size_t>(truth[i])] = 0.9;
    good.scores[static_cast<size_t>(1 - truth[i])] = 0.1;
    bad.scores[static_cast<size_t>(truth[i])] = 0.1;
    bad.scores[static_cast<size_t>(1 - truth[i])] = 0.9;
    cv[0].push_back(good);
    cv[1].push_back(bad);
  }
  MetaLearner meta;
  ASSERT_TRUE(meta.Train(cv, truth, 2).ok());
  for (int label = 0; label < 2; ++label) {
    EXPECT_GT(meta.WeightOf(label, 0), meta.WeightOf(label, 1));
    EXPECT_GE(meta.WeightOf(label, 1), 0.0);  // non-negative stacking
  }
}

TEST(MetaLearnerTest, CombineWeightsPerLabel) {
  // Learner 0 reliable for label 0 only; learner 1 reliable for label 1
  // only: the per-label weight matrix is what makes LSD multi-strategy.
  const size_t n = 60;
  std::vector<int> truth(n);
  std::vector<std::vector<Prediction>> cv(2);
  for (size_t i = 0; i < n; ++i) {
    truth[i] = static_cast<int>(i % 3);  // labels 0,1,2
    Prediction l0(3), l1(3);
    // Learner 0: confident and right when truth==0, noise otherwise.
    if (truth[i] == 0) {
      l0.scores = {0.9, 0.05, 0.05};
    } else {
      l0.scores = {0.34, 0.33, 0.33};
    }
    // Learner 1: confident and right when truth==1, noise otherwise.
    if (truth[i] == 1) {
      l1.scores = {0.05, 0.9, 0.05};
    } else {
      l1.scores = {0.33, 0.34, 0.33};
    }
    cv[0].push_back(l0);
    cv[1].push_back(l1);
  }
  MetaLearner meta;
  ASSERT_TRUE(meta.Train(cv, truth, 3).ok());
  EXPECT_GT(meta.WeightOf(0, 0), meta.WeightOf(0, 1));
  EXPECT_GT(meta.WeightOf(1, 1), meta.WeightOf(1, 0));

  // Combination of fresh predictions follows the learned trust.
  Prediction from0(3), from1(3);
  from0.scores = {0.8, 0.1, 0.1};   // learner 0 says label 0
  from1.scores = {0.1, 0.8, 0.1};   // learner 1 says label 1
  auto combined = meta.Combine({from0, from1});
  ASSERT_TRUE(combined.ok());
  // Both are trusted for their own label; result must be a distribution.
  double total = 0;
  for (double s : combined->scores) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MetaLearnerTest, InputValidation) {
  MetaLearner meta;
  EXPECT_FALSE(meta.Train({}, {0}, 2).ok());
  std::vector<std::vector<Prediction>> cv(1);
  cv[0].push_back(Prediction::Uniform(2));
  EXPECT_FALSE(meta.Train(cv, {0, 1}, 2).ok());  // count mismatch
  EXPECT_FALSE(meta.Combine({Prediction::Uniform(2)}).ok());  // untrained
}

TEST(MetaLearnerTest, CombineValidatesShape) {
  std::vector<std::vector<Prediction>> cv(2);
  std::vector<int> truth = {0, 1};
  for (int i = 0; i < 2; ++i) {
    cv[0].push_back(Prediction::PointMass(2, i));
    cv[1].push_back(Prediction::PointMass(2, i));
  }
  MetaLearner meta;
  ASSERT_TRUE(meta.Train(cv, truth, 2).ok());
  EXPECT_FALSE(meta.Combine({Prediction::Uniform(2)}).ok());  // 1 of 2
  EXPECT_FALSE(
      meta.Combine({Prediction::Uniform(3), Prediction::Uniform(3)}).ok());
}

// ---------------------------------------------------------------------------
// Prediction converter
// ---------------------------------------------------------------------------

TEST(PredictionConverterTest, AverageMatchesPaperExample) {
  // Section 3.2: three instance predictions for tag "area" average to
  // <ADDRESS:0.7, DESCRIPTION:0.163, AGENT-PHONE:0.137>.
  Prediction a(3), b(3), c(3);
  a.scores = {0.7, 0.2, 0.1};
  b.scores = {0.5, 0.2, 0.3};
  c.scores = {0.9, 0.09, 0.01};
  PredictionConverter converter;
  auto out = converter.Convert({a, b, c});
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->scores[0], 0.7, 1e-9);
  EXPECT_NEAR(out->scores[1], 0.163, 1e-3);
  EXPECT_NEAR(out->scores[2], 0.137, 1e-3);
}

TEST(PredictionConverterTest, MaxPolicy) {
  Prediction a(2), b(2);
  a.scores = {0.9, 0.1};
  b.scores = {0.2, 0.8};
  PredictionConverter converter(ConverterPolicy::kMax);
  auto out = converter.Convert({a, b});
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->scores[0], 0.9 / 1.7, 1e-9);
}

TEST(PredictionConverterTest, ProductPolicyRewardsConsistency) {
  Prediction consistent(2), noisy(2);
  consistent.scores = {0.6, 0.4};
  noisy.scores = {0.6, 0.4};
  PredictionConverter converter(ConverterPolicy::kProduct);
  auto out = converter.Convert({consistent, noisy});
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out->scores[0], 0.6);  // product sharpens agreement
}

TEST(PredictionConverterTest, RejectsEmptyAndMismatched) {
  PredictionConverter converter;
  EXPECT_FALSE(converter.Convert({}).ok());
  EXPECT_FALSE(
      converter.Convert({Prediction::Uniform(2), Prediction::Uniform(3)}).ok());
}

}  // namespace
}  // namespace lsd
