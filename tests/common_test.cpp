#include <cmath>
#include <set>
#include <vector>

#include "common/backoff.h"
#include "common/deadline.h"
#include "common/linalg.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "gtest/gtest.h"

namespace lsd {
namespace {

// ---------------------------------------------------------------------------
// Status / StatusOr
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, FactoryCodesAreDistinct) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::AlreadyExists("").code(),   Status::FailedPrecondition("").code(),
      Status::OutOfRange("").code(),      Status::ParseError("").code(),
      Status::Unimplemented("").code(),   Status::Internal("").code()};
  EXPECT_EQ(codes.size(), 8u);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> extracted = std::move(v).value();
  EXPECT_EQ(*extracted, 7);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseMacros(int x, int* out) {
  LSD_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  LSD_RETURN_IF_ERROR(Status::OK());
  *out = value * 2;
  return Status::OK();
}

TEST(StatusOrTest, MacrosPropagate) {
  int out = 0;
  EXPECT_TRUE(UseMacros(5, &out).ok());
  EXPECT_EQ(out, 10);
  Status failed = UseMacros(-1, &out);
  EXPECT_EQ(failed.code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(StringsTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("Hello-World 42"), "hello-world 42");
  EXPECT_EQ(ToUpper("Hello"), "HELLO");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b  "), "a b");
  EXPECT_EQ(StripWhitespace("\t\n"), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("a,,c", ',', /*skip_empty=*/true),
            (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, SplitAny) {
  EXPECT_EQ(SplitAny("a-b_c", "-_"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitAny("  a  b ", " "), (std::vector<std::string>{"a", "b"}));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringsTest, StartsEndsContains) {
  EXPECT_TRUE(StartsWith("prefix-rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(EndsWith("file.xml", ".xml"));
  EXPECT_FALSE(EndsWith("xml", ".xml"));
  EXPECT_TRUE(Contains("haystack", "stack"));
  EXPECT_TRUE(ContainsIgnoreCase("AgentPhone", "phone"));
  EXPECT_FALSE(ContainsIgnoreCase("agent", "phone"));
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

TEST(StringsTest, IsAllDigits) {
  EXPECT_TRUE(IsAllDigits("0123"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_FALSE(IsAllDigits("12a"));
  EXPECT_FALSE(IsAllDigits("-1"));
}

TEST(StringsTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble(" 3.5 ", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble("-2e3", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_FALSE(ParseDouble("12x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values should appear
}

TEST(RngTest, UniformIntDegenerate) {
  Rng rng(9);
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.5) ? 1 : 0;
  EXPECT_GT(heads, 4700);
  EXPECT_LT(heads, 5300);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(RngTest, PickWeightedFollowsWeights) {
  Rng rng(17);
  std::vector<double> weights = {0.0, 9.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 5000; ++i) ++counts[rng.PickWeighted(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], counts[2] * 5);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

// ---------------------------------------------------------------------------
// Linalg
// ---------------------------------------------------------------------------

TEST(LinalgTest, SolveIdentity) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(1, 1) = 1;
  auto x = SolveLinearSystem(a, {3.0, 4.0});
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ((*x)[0], 3.0);
  EXPECT_DOUBLE_EQ((*x)[1], 4.0);
}

TEST(LinalgTest, SolveRequiresPivoting) {
  // First pivot is zero; partial pivoting must handle it.
  Matrix a(2, 2);
  a.at(0, 0) = 0;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 0;
  auto x = SolveLinearSystem(a, {5.0, 6.0});
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ((*x)[0], 6.0);
  EXPECT_DOUBLE_EQ((*x)[1], 5.0);
}

TEST(LinalgTest, SolveSingularFails) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 4;
  auto x = SolveLinearSystem(a, {1.0, 2.0});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kFailedPrecondition);
}

TEST(LinalgTest, SolveShapeErrors) {
  Matrix rect(2, 3);
  EXPECT_FALSE(SolveLinearSystem(rect, {1, 2}).ok());
  Matrix sq(2, 2);
  EXPECT_FALSE(SolveLinearSystem(sq, {1, 2, 3}).ok());
}

TEST(LinalgTest, LeastSquaresExactFit) {
  // y = 2*x1 + 3*x2, overdetermined.
  Matrix a(4, 2);
  std::vector<double> b(4);
  double xs[4][2] = {{1, 0}, {0, 1}, {1, 1}, {2, 1}};
  for (int i = 0; i < 4; ++i) {
    a.at(i, 0) = xs[i][0];
    a.at(i, 1) = xs[i][1];
    b[static_cast<size_t>(i)] = 2 * xs[i][0] + 3 * xs[i][1];
  }
  auto x = LeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-3);
  EXPECT_NEAR((*x)[1], 3.0, 1e-3);
}

TEST(LinalgTest, LeastSquaresNonNegativeClampsNegatives) {
  // Best unconstrained fit has a negative coefficient on column 1.
  Matrix a(3, 2);
  double rows[3][2] = {{1, 1}, {1, 0}, {0, 1}};
  std::vector<double> b = {0.0, 1.0, -1.0};
  for (int i = 0; i < 3; ++i) {
    a.at(i, 0) = rows[i][0];
    a.at(i, 1) = rows[i][1];
  }
  LeastSquaresOptions options;
  options.non_negative = true;
  auto x = LeastSquares(a, b, options);
  ASSERT_TRUE(x.ok());
  EXPECT_GE((*x)[0], 0.0);
  EXPECT_GE((*x)[1], 0.0);
  EXPECT_NEAR((*x)[1], 0.0, 1e-9);  // clamped
}

TEST(LinalgTest, LeastSquaresCollinearColumnsSurviveViaRidge) {
  Matrix a(3, 2);
  for (int i = 0; i < 3; ++i) {
    a.at(i, 0) = i + 1.0;
    a.at(i, 1) = 2.0 * (i + 1.0);  // exactly collinear
  }
  std::vector<double> b = {1, 2, 3};
  LeastSquaresOptions options;
  options.ridge = 1e-4;
  auto x = LeastSquares(a, b, options);
  ASSERT_TRUE(x.ok());
  // Fit should still reproduce b approximately: x0 + 2*x1 ≈ 1.
  EXPECT_NEAR((*x)[0] + 2 * (*x)[1], 1.0, 1e-2);
}

TEST(LinalgTest, LeastSquaresRejectsEmptyAndMismatch) {
  Matrix empty;
  EXPECT_FALSE(LeastSquares(empty, {}).ok());
  Matrix a(2, 1);
  EXPECT_FALSE(LeastSquares(a, {1.0}).ok());
}

TEST(LinalgTest, NormalizeToDistribution) {
  std::vector<double> v = {1.0, 3.0};
  NormalizeToDistribution(&v);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
}

TEST(LinalgTest, NormalizeNegativesClampedThenUniformFallback) {
  std::vector<double> v = {-1.0, -2.0};
  NormalizeToDistribution(&v);
  EXPECT_DOUBLE_EQ(v[0], 0.5);
  EXPECT_DOUBLE_EQ(v[1], 0.5);
  std::vector<double> mixed = {-1.0, 1.0};
  NormalizeToDistribution(&mixed);
  EXPECT_DOUBLE_EQ(mixed[0], 0.0);
  EXPECT_DOUBLE_EQ(mixed[1], 1.0);
}

TEST(LinalgTest, DotAndNorm) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Norm({3, 4}), 5.0);
}

TEST(LinalgTest, TransposeTimesSelf) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  Matrix ata = a.TransposeTimesSelf();
  EXPECT_DOUBLE_EQ(ata.at(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(ata.at(0, 1), 14.0);
  EXPECT_DOUBLE_EQ(ata.at(1, 0), 14.0);
  EXPECT_DOUBLE_EQ(ata.at(1, 1), 20.0);
}

// ---------------------------------------------------------------------------
// Seeded jittered exponential backoff. Every test injects a fake sleep —
// nothing here ever sleeps for real.
// ---------------------------------------------------------------------------

TEST(BackoffTest, DelaysGrowExponentiallyUpToTheCap) {
  BackoffPolicy policy;
  policy.initial_ms = 10;
  policy.multiplier = 2.0;
  policy.max_ms = 50;
  policy.jitter = 0.0;  // pure schedule, no randomness
  Backoff backoff(policy, 1);
  EXPECT_EQ(backoff.DelayMillis("k", 0), 10);
  EXPECT_EQ(backoff.DelayMillis("k", 1), 20);
  EXPECT_EQ(backoff.DelayMillis("k", 2), 40);
  EXPECT_EQ(backoff.DelayMillis("k", 3), 50);  // capped
  EXPECT_EQ(backoff.DelayMillis("k", 9), 50);
}

TEST(BackoffTest, JitterIsDeterministicBoundedAndKeyDependent) {
  BackoffPolicy policy;
  policy.initial_ms = 100;
  policy.multiplier = 1.0;
  policy.max_ms = 100;
  policy.jitter = 0.5;
  Backoff backoff(policy, 7);
  // Deterministic: the same (key, attempt) always yields the same delay.
  int64_t first = backoff.DelayMillis("req-1", 0);
  EXPECT_EQ(backoff.DelayMillis("req-1", 0), first);
  // Bounded: jitter only shrinks the delay, never below (1-jitter)*delay.
  bool saw_spread = false;
  for (int i = 0; i < 32; ++i) {
    int64_t delay = backoff.DelayMillis("req-" + std::to_string(i), 0);
    EXPECT_GE(delay, 50);
    EXPECT_LE(delay, 100);
    if (delay != first) saw_spread = true;
  }
  // Key-dependent: different requests desynchronize (thundering herd fix).
  EXPECT_TRUE(saw_spread);
  // Seed-dependent: a different seed reshuffles the schedule.
  Backoff other(policy, 8);
  bool seed_differs = false;
  for (int i = 0; i < 8 && !seed_differs; ++i) {
    std::string key = "req-" + std::to_string(i);
    seed_differs = other.DelayMillis(key, 0) != backoff.DelayMillis(key, 0);
  }
  EXPECT_TRUE(seed_differs);
}

TEST(BackoffTest, RetryStopsAfterMaxRetriesAndSleepsTheSchedule) {
  BackoffPolicy policy;
  policy.max_retries = 3;
  policy.initial_ms = 10;
  policy.multiplier = 2.0;
  policy.max_ms = 1000;
  policy.jitter = 0.0;
  Backoff backoff(policy, 1);
  std::vector<int64_t> slept;
  size_t attempts = 0, retries = 0;
  size_t calls = 0;
  Status status = RetryWithBackoff(
      backoff, "job", Deadline(),
      [](const Status&) { return true; },
      [&slept](int64_t ms) { slept.push_back(ms); },
      [&calls]() -> Status {
        ++calls;
        return Status::Internal("still broken");
      },
      &attempts, &retries);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 4u);  // 1 first attempt + 3 retries
  EXPECT_EQ(attempts, 4u);
  EXPECT_EQ(retries, 3u);
  EXPECT_EQ(slept, (std::vector<int64_t>{10, 20, 40}));
}

TEST(BackoffTest, RetrySucceedsMidwayAndStopsSleeping) {
  Backoff backoff(BackoffPolicy{}, 1);
  size_t calls = 0;
  size_t attempts = 0, retries = 0;
  Status status = RetryWithBackoff(
      backoff, "job", Deadline(), [](const Status&) { return true; },
      [](int64_t) {},
      [&calls]() -> Status {
        ++calls;
        return calls < 2 ? Status::Internal("transient") : Status::OK();
      },
      &attempts, &retries);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(attempts, 2u);
  EXPECT_EQ(retries, 1u);
}

TEST(BackoffTest, NonRetryableErrorIsNeverRetried) {
  Backoff backoff(BackoffPolicy{}, 1);
  size_t calls = 0;
  Status status = RetryWithBackoff(
      backoff, "job", Deadline(),
      [](const Status& s) { return s.code() == StatusCode::kInternal; },
      [](int64_t) { FAIL() << "must not sleep"; },
      [&calls]() -> Status {
        ++calls;
        return Status::InvalidArgument("hard error");
      });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1u);
}

TEST(BackoffTest, RetryThatCannotFitTheDeadlineIsNotStarted) {
  BackoffPolicy policy;
  policy.max_retries = 5;
  policy.initial_ms = 1000;  // every delay overshoots a 0 ms budget
  policy.jitter = 0.0;
  Backoff backoff(policy, 1);
  size_t calls = 0;
  Status status = RetryWithBackoff(
      backoff, "job", Deadline::AfterMillis(0),
      [](const Status&) { return true; },
      [](int64_t) { FAIL() << "must not sleep past the deadline"; },
      [&calls]() -> Status {
        ++calls;
        return Status::Internal("transient");
      });
  // The attempt's own (more diagnostic) error comes back, not a bare
  // DeadlineExceeded; only one attempt ran.
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 1u);
}

}  // namespace
}  // namespace lsd
