// End-to-end integration tests: full train/match cycles over the
// synthetic evaluation domains, exercising every module together the way
// the experiment harness does. These are the "does the whole pipeline
// produce sane mappings" checks; the per-module suites cover details.

#include <algorithm>

#include "core/feedback.h"
#include "core/lsd_system.h"
#include "datagen/domains.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "gtest/gtest.h"

namespace lsd {
namespace {

struct TrainedWorld {
  Domain domain;
  std::unique_ptr<LsdSystem> system;
};

TrainedWorld MakeWorld(const std::string& domain_name, size_t listings = 40,
                       bool constraints = true) {
  TrainedWorld world;
  world.domain =
      *MakeEvaluationDomain(domain_name, /*num_sources=*/5, listings, 7);
  LsdConfig config = ConfigForDomain(domain_name, LsdConfig());
  world.system = std::make_unique<LsdSystem>(world.domain.mediated, config,
                                             &world.domain.synonyms);
  if (constraints) {
    for (auto& c : MakeDomainConstraints(world.domain)) {
      world.system->AddConstraint(std::move(c));
    }
  }
  for (int s = 0; s < 3; ++s) {
    EXPECT_TRUE(world.system
                    ->AddTrainingSource(
                        world.domain.sources[static_cast<size_t>(s)].source,
                        world.domain.sources[static_cast<size_t>(s)].gold)
                    .ok());
  }
  EXPECT_TRUE(world.system->Train().ok());
  return world;
}

class DomainIntegrationTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DomainIntegrationTest, FullSystemBeatsChance) {
  TrainedWorld world = MakeWorld(GetParam());
  for (size_t s = 3; s < 5; ++s) {
    const GeneratedSource& held_out = world.domain.sources[s];
    auto result = world.system->MatchSource(held_out.source);
    ASSERT_TRUE(result.ok());
    double accuracy = MatchingAccuracy(result->mapping, held_out.gold);
    // Chance is ~1/|labels|; the trained system must far exceed it.
    EXPECT_GT(accuracy, 0.4) << held_out.source.name;
    // Every source tag received some label.
    EXPECT_EQ(result->mapping.size(),
              held_out.source.schema.AllTags().size());
  }
}

TEST_P(DomainIntegrationTest, ConstraintsNeverApplyLabelTwice) {
  TrainedWorld world = MakeWorld(GetParam());
  const GeneratedSource& held_out = world.domain.sources[4];
  auto result = world.system->MatchSource(held_out.source);
  ASSERT_TRUE(result.ok());
  std::map<std::string, int> counts;
  for (const auto& [tag, label] : result->mapping.entries()) {
    if (label != "OTHER") ++counts[label];
  }
  for (const auto& [label, count] : counts) {
    EXPECT_LE(count, 1) << label;
  }
}

TEST_P(DomainIntegrationTest, HandlerNotWorseThanArgmaxOnAverage) {
  TrainedWorld world = MakeWorld(GetParam());
  double with = 0, without = 0;
  for (size_t s = 3; s < 5; ++s) {
    const GeneratedSource& held_out = world.domain.sources[s];
    auto preds = world.system->PredictSource(held_out.source);
    ASSERT_TRUE(preds.ok());
    MatchOptions handler_on, handler_off;
    handler_off.use_constraint_handler = false;
    auto a = world.system->MatchWithPredictions(*preds, held_out.source,
                                                handler_on);
    auto b = world.system->MatchWithPredictions(*preds, held_out.source,
                                                handler_off);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    with += MatchingAccuracy(a->mapping, held_out.gold);
    without += MatchingAccuracy(b->mapping, held_out.gold);
  }
  // The constraint handler may not help on every single source, but it
  // must not be a systematic regression.
  EXPECT_GE(with, without - 0.101);
}

TEST_P(DomainIntegrationTest, FeedbackMonotonicallyFixesTags) {
  TrainedWorld world = MakeWorld(GetParam());
  const GeneratedSource& target = world.domain.sources[3];
  FeedbackSession session(world.system.get(), &target.source);
  ASSERT_TRUE(session.Initialize().ok());
  auto before = session.CurrentMapping();
  ASSERT_TRUE(before.ok());
  double acc_before = MatchingAccuracy(before->mapping, target.gold);
  auto stats = session.RunWithOracle(target.gold, MatchOptions(),
                                     /*max_corrections=*/60);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->reached_perfect);
  auto after = session.CurrentMapping();
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(MatchingAccuracy(after->mapping, target.gold), 1.0);
  EXPECT_GE(1.0, acc_before);
  // Corrections needed must be no more than the initially wrong tags.
  AccuracyBreakdown breakdown = ScoreMapping(before->mapping, target.gold);
  size_t initially_wrong = (breakdown.matchable - breakdown.correct) +
                           (breakdown.other_total - breakdown.other_correct);
  EXPECT_LE(stats->corrections, initially_wrong + 1);
}

INSTANTIATE_TEST_SUITE_P(AllDomains, DomainIntegrationTest,
                         ::testing::Values("real-estate-1", "time-schedule",
                                           "faculty-listings"));

// Real Estate II is big; run a single cheaper end-to-end check.
TEST(RealEstate2IntegrationTest, FullCycle) {
  TrainedWorld world = MakeWorld("real-estate-2", /*listings=*/30);
  const GeneratedSource& held_out = world.domain.sources[4];
  auto result = world.system->MatchSource(held_out.source);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(MatchingAccuracy(result->mapping, held_out.gold), 0.4);
}

// ---------------------------------------------------------------------------
// Experiment harness
// ---------------------------------------------------------------------------

TEST(ExperimentTest, RunDomainExperimentProducesAllVariants) {
  ExperimentConfig config;
  config.samples = 1;
  config.num_listings = 20;
  std::vector<SystemVariant> variants = {
      {"full", MatchOptions{}},
      {"argmax",
       MatchOptions{{}, {}, true, /*use_constraint_handler=*/false,
                    ConstraintFilter::kAll}},
  };
  auto stats = RunDomainExperiment("faculty-listings", config, variants);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->size(), 2u);
  // 1 sample x 10 splits x 2 test sources = 20 measurements per variant.
  EXPECT_EQ(stats->at("full").count(), 20u);
  EXPECT_EQ(stats->at("argmax").count(), 20u);
  EXPECT_GT(stats->at("full").mean(), 0.3);
}

TEST(ExperimentTest, CountyVariantRejectedOutsideRealEstate) {
  ExperimentConfig config;
  config.samples = 1;
  config.num_listings = 10;
  std::vector<SystemVariant> variants(1);
  variants[0].name = "bad";
  variants[0].options.learners = {kCountyRecognizerName};
  EXPECT_FALSE(RunDomainExperiment("time-schedule", config, variants).ok());
}

TEST(ExperimentTest, SamplesVaryDataButKeepSchemas) {
  // With two samples, the measurement count doubles.
  ExperimentConfig config;
  config.samples = 2;
  config.num_listings = 10;
  std::vector<SystemVariant> variants = {{"full", MatchOptions{}}};
  auto stats = RunDomainExperiment("faculty-listings", config, variants);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->at("full").count(), 40u);
}

}  // namespace
}  // namespace lsd
