// Tests for the observability layer: MetricsRegistry semantics, the
// shard-merge determinism contract (counter values bit-identical for any
// thread count), and the trace recorder.

#include <atomic>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/lsd_system.h"
#include "datagen/domains.h"
#include "gtest/gtest.h"

namespace lsd {
namespace {

// The registry is process-global; every test starts from zero.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::Global().Reset(); }
};

TEST_F(MetricsTest, CounterAccumulates) {
  Counter* counter = MetricsRegistry::Global().GetCounter("test.counter");
  counter->Increment();
  counter->Increment(41);
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.CounterOf("test.counter"), 42u);
}

TEST_F(MetricsTest, HandleInterningIsStable) {
  Counter* a = MetricsRegistry::Global().GetCounter("test.same");
  Counter* b = MetricsRegistry::Global().GetCounter("test.same");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, MetricsRegistry::Global().GetCounter("test.other"));
}

TEST_F(MetricsTest, GaugeKeepsMaximum) {
  Gauge* gauge = MetricsRegistry::Global().GetGauge("test.gauge");
  gauge->RecordMax(7);
  gauge->RecordMax(3);
  gauge->RecordMax(11);
  gauge->RecordMax(2);
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  bool found = false;
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name != "test.gauge") continue;
    found = true;
    EXPECT_EQ(gauge.value, 11u);
  }
  EXPECT_TRUE(found);
}

TEST_F(MetricsTest, HistogramCountsSumsAndBuckets) {
  Histogram* histogram = MetricsRegistry::Global().GetHistogram("test.histo");
  histogram->Record(0);
  histogram->Record(1);
  histogram->Record(1000);
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  bool found = false;
  for (const auto& h : snapshot.histograms) {
    if (h.name != "test.histo") continue;
    found = true;
    EXPECT_EQ(h.count, 3u);
    EXPECT_EQ(h.sum, 1001u);
    EXPECT_EQ(h.max, 1000u);
    uint64_t bucket_total = 0;
    for (uint64_t b : h.buckets) bucket_total += b;
    EXPECT_EQ(bucket_total, 3u);
  }
  EXPECT_TRUE(found);
}

TEST_F(MetricsTest, UntouchedMetricReportsZero) {
  MetricsRegistry::Global().GetCounter("test.interned_only");
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.CounterOf("test.interned_only"), 0u);
  // The name is present in the snapshot even though never incremented.
  bool found = false;
  for (const auto& counter : snapshot.counters) {
    found = found || counter.name == "test.interned_only";
  }
  EXPECT_TRUE(found);
}

TEST_F(MetricsTest, SnapshotIsNameSorted) {
  MetricsRegistry::Global().GetCounter("test.zebra");
  MetricsRegistry::Global().GetCounter("test.alpha");
  MetricsRegistry::Global().GetCounter("test.middle");
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  for (size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].name, snapshot.counters[i].name);
  }
}

TEST_F(MetricsTest, ResetZeroesButKeepsNames) {
  Counter* counter = MetricsRegistry::Global().GetCounter("test.reset");
  counter->Increment(5);
  MetricsRegistry::Global().Reset();
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.CounterOf("test.reset"), 0u);
  // The handle survives the reset and keeps working.
  counter->Increment(2);
  EXPECT_EQ(MetricsRegistry::Global().Snapshot().CounterOf("test.reset"), 2u);
}

TEST_F(MetricsTest, ConcurrentIncrementsAreLossless) {
  Counter* counter = MetricsRegistry::Global().GetCounter("test.mt");
  Histogram* histogram =
      MetricsRegistry::Global().GetHistogram("test.mt_histo");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        histogram->Record(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.CounterOf("test.mt"),
            static_cast<uint64_t>(kThreads) * kPerThread);
  // Interned names survive Reset(), so find ours by name rather than
  // assuming it is the only histogram.
  bool found = false;
  for (const auto& h : snapshot.histograms) {
    if (h.name != "test.mt_histo") continue;
    found = true;
    EXPECT_EQ(h.count, static_cast<uint64_t>(kThreads) * kPerThread);
  }
  EXPECT_TRUE(found);
}

TEST_F(MetricsTest, SnapshotWhileWritersRun) {
  Counter* counter = MetricsRegistry::Global().GetCounter("test.racing");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) counter->Increment();
  });
  uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    uint64_t now = MetricsRegistry::Global().Snapshot().CounterOf("test.racing");
    EXPECT_GE(now, last);  // monotone under concurrent writes
    last = now;
  }
  stop.store(true);
  writer.join();
}

TEST_F(MetricsTest, ToJsonEmitsAllSections) {
  MetricsRegistry::Global().GetCounter("test.c")->Increment(3);
  MetricsRegistry::Global().GetGauge("test.g")->RecordMax(9);
  MetricsRegistry::Global().GetHistogram("test.h")->Record(4);
  std::string json = MetricsRegistry::Global().Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.c\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"test.g\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.h\""), std::string::npos);
}

TEST_F(MetricsTest, PoolCountersMatchWorkAcrossThreadCounts) {
  // Same batch shape on pools of different sizes: identical task counts.
  std::vector<uint64_t> counts;
  for (size_t threads : {1u, 2u, 4u}) {
    MetricsRegistry::Global().Reset();
    ThreadPool pool(threads);
    std::atomic<int> sink{0};
    ASSERT_TRUE(pool.ParallelFor(37, [&](size_t) -> Status {
                      sink.fetch_add(1);
                      return Status::OK();
                    }).ok());
    counts.push_back(
        MetricsRegistry::Global().Snapshot().CounterOf("pool.tasks_run"));
  }
  EXPECT_EQ(counts[0], 37u);
  EXPECT_EQ(counts[1], 37u);
  EXPECT_EQ(counts[2], 37u);
}

// The tentpole contract: run the full train+match pipeline at 1/2/4/8
// threads and require every counter (name and value) to be bit-identical.
// Gauges and histograms are deliberately outside the contract — high-water
// marks depend on scheduling and timings on the clock.
TEST_F(MetricsTest, PipelineCountersAreThreadCountInvariant) {
  auto domain = MakeEvaluationDomain("real-estate-1", /*num_sources=*/4,
                                     /*listings_per_source=*/12, /*seed=*/3);
  ASSERT_TRUE(domain.ok()) << domain.status().ToString();

  auto run = [&](size_t threads) -> std::string {
    MetricsRegistry::Global().Reset();
    LsdConfig config;
    config.num_threads = threads;
    LsdSystem system(domain->mediated, config);
    for (auto& constraint : MakeDomainConstraints(*domain)) {
      system.AddConstraint(std::move(constraint));
    }
    for (size_t s = 0; s + 1 < domain->sources.size(); ++s) {
      LSD_CHECK_OK(system.AddTrainingSource(domain->sources[s].source,
                                            domain->sources[s].gold));
    }
    LSD_CHECK_OK(system.Train());
    auto match = system.MatchSource(domain->sources.back().source);
    LSD_CHECK_OK(match.status());
    std::string counters;
    for (const auto& counter :
         MetricsRegistry::Global().Snapshot().counters) {
      counters += counter.name + "=" + std::to_string(counter.value) + "\n";
    }
    return counters;
  };

  std::string serial = run(1);
  EXPECT_NE(serial.find("cv.folds_trained"), std::string::npos);
  EXPECT_NE(serial.find("train.examples"), std::string::npos);
  EXPECT_NE(serial.find("astar.expanded"), std::string::npos);
  for (size_t threads : {2u, 4u, 8u}) {
    EXPECT_EQ(run(threads), serial) << "threads=" << threads;
  }
}

TEST_F(MetricsTest, RunReportCarriesSnapshot) {
  auto domain = MakeEvaluationDomain("real-estate-1", /*num_sources=*/3,
                                     /*listings_per_source=*/10, /*seed=*/5);
  ASSERT_TRUE(domain.ok()) << domain.status().ToString();
  LsdConfig config;
  LsdSystem system(domain->mediated, config);
  for (size_t s = 0; s + 1 < domain->sources.size(); ++s) {
    ASSERT_TRUE(system.AddTrainingSource(domain->sources[s].source,
                                         domain->sources[s].gold)
                    .ok());
  }
  ASSERT_TRUE(system.Train().ok());
  auto match = system.MatchSource(domain->sources.back().source);
  ASSERT_TRUE(match.ok()) << match.status().ToString();
  EXPECT_FALSE(match->report.metrics.empty());
  EXPECT_GT(match->report.metrics.CounterOf("train.examples"), 0u);
  EXPECT_GT(match->report.metrics.CounterOf("predict.instances"), 0u);
  // The snapshot never flips a clean report to degraded.
  EXPECT_FALSE(match->report.degraded());
}

// ---------------------------------------------------------------------------
// Trace recorder
// ---------------------------------------------------------------------------

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { TraceRecorder::Global().Stop(); }
  void TearDown() override { TraceRecorder::Global().Stop(); }
};

TEST_F(TraceTest, DisabledRecorderCapturesNothing) {
  { TraceSpan span("test/ignored"); }
  TraceRecorder::Global().Start();
  TraceRecorder::Global().Stop();
  EXPECT_TRUE(TraceRecorder::Global().Events().empty());
}

TEST_F(TraceTest, CapturesNamedAndDetailedSpans) {
  TraceRecorder::Global().Start();
  { TraceSpan span("test/outer"); }
  { TraceSpan span("test/learner", "whirl"); }
  TraceRecorder::Global().Stop();
  std::vector<TraceEvent> events = TraceRecorder::Global().Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "test/outer");
  EXPECT_EQ(events[1].name, "test/learner(whirl)");
  // Events are sorted by begin time.
  EXPECT_LE(events[0].begin_us, events[1].begin_us);
}

TEST_F(TraceTest, MultiThreadedSpansGetDistinctTids) {
  TraceRecorder::Global().Start();
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([] { TraceSpan span("test/worker"); });
  }
  for (std::thread& thread : threads) thread.join();
  TraceRecorder::Global().Stop();
  std::vector<TraceEvent> events = TraceRecorder::Global().Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_TRUE(events[0].tid != events[1].tid ||
              events[1].tid != events[2].tid);
}

TEST_F(TraceTest, ChromeJsonShape) {
  TraceRecorder::Global().Start();
  { TraceSpan span("test/json \"quoted\""); }
  TraceRecorder::Global().Stop();
  std::string json = TraceRecorder::Global().ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
}

TEST_F(TraceTest, StartClearsPreviousEvents) {
  TraceRecorder::Global().Start();
  { TraceSpan span("test/first"); }
  TraceRecorder::Global().Stop();
  ASSERT_EQ(TraceRecorder::Global().Events().size(), 1u);
  TraceRecorder::Global().Start();
  { TraceSpan span("test/second"); }
  TraceRecorder::Global().Stop();
  std::vector<TraceEvent> events = TraceRecorder::Global().Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "test/second");
}

TEST_F(TraceTest, PipelineEmitsExpectedSpanNames) {
  auto domain = MakeEvaluationDomain("real-estate-1", /*num_sources=*/3,
                                     /*listings_per_source=*/10, /*seed=*/9);
  ASSERT_TRUE(domain.ok()) << domain.status().ToString();
  TraceRecorder::Global().Start();
  LsdConfig config;
  LsdSystem system(domain->mediated, config);
  for (size_t s = 0; s + 1 < domain->sources.size(); ++s) {
    ASSERT_TRUE(system.AddTrainingSource(domain->sources[s].source,
                                         domain->sources[s].gold)
                    .ok());
  }
  ASSERT_TRUE(system.Train().ok());
  auto match = system.MatchSource(domain->sources.back().source);
  ASSERT_TRUE(match.ok()) << match.status().ToString();
  TraceRecorder::Global().Stop();
  bool saw_train = false, saw_fold = false, saw_meta = false,
       saw_predict = false, saw_match = false;
  for (const TraceEvent& event : TraceRecorder::Global().Events()) {
    saw_train = saw_train || event.name == "train/system";
    saw_fold = saw_fold || event.name == "cv/fold";
    saw_meta = saw_meta || event.name == "meta/train";
    saw_predict = saw_predict ||
                  event.name.rfind("predict/source", 0) == 0;
    saw_match = saw_match || event.name.rfind("match/source", 0) == 0;
  }
  EXPECT_TRUE(saw_train);
  EXPECT_TRUE(saw_fold);
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_predict);
  EXPECT_TRUE(saw_match);
}

}  // namespace
}  // namespace lsd
