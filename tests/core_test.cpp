#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "core/feedback.h"
#include "core/lsd_system.h"
#include "gtest/gtest.h"
#include "xml/dtd_parser.h"
#include "xml/xml_parser.h"

namespace lsd {
namespace {

// Small two-source real-estate world with disjoint vocabularies plus
// shared phone/name words — enough signal for all learners.
class LsdSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mediated_ = ParseDtd(R"(
      <!ELEMENT HOUSE (ADDRESS, DESCRIPTION, CONTACT-INFO)>
      <!ELEMENT ADDRESS (#PCDATA)>
      <!ELEMENT DESCRIPTION (#PCDATA)>
      <!ELEMENT CONTACT-INFO (AGENT-NAME, AGENT-PHONE)>
      <!ELEMENT AGENT-NAME (#PCDATA)>
      <!ELEMENT AGENT-PHONE (#PCDATA)>
    )").value();

    source_a_ = MakeSource(
        "a.com",
        R"(<!ELEMENT house-listing (location, comments, contact)>
           <!ELEMENT location (#PCDATA)>
           <!ELEMENT comments (#PCDATA)>
           <!ELEMENT contact (name, phone)>
           <!ELEMENT name (#PCDATA)>
           <!ELEMENT phone (#PCDATA)>)",
        {"house-listing", "location", "comments", "contact", "name", "phone"},
        11);
    gold_a_.Set("house-listing", "HOUSE");
    gold_a_.Set("location", "ADDRESS");
    gold_a_.Set("comments", "DESCRIPTION");
    gold_a_.Set("contact", "CONTACT-INFO");
    gold_a_.Set("name", "AGENT-NAME");
    gold_a_.Set("phone", "AGENT-PHONE");

    source_b_ = MakeSource(
        "b.com",
        R"(<!ELEMENT listing (house-addr, detailed-desc, agent-info)>
           <!ELEMENT house-addr (#PCDATA)>
           <!ELEMENT detailed-desc (#PCDATA)>
           <!ELEMENT agent-info (agent-name, agent-phone)>
           <!ELEMENT agent-name (#PCDATA)>
           <!ELEMENT agent-phone (#PCDATA)>)",
        {"listing", "house-addr", "detailed-desc", "agent-info", "agent-name",
         "agent-phone"},
        22);
    gold_b_.Set("listing", "HOUSE");
    gold_b_.Set("house-addr", "ADDRESS");
    gold_b_.Set("detailed-desc", "DESCRIPTION");
    gold_b_.Set("agent-info", "CONTACT-INFO");
    gold_b_.Set("agent-name", "AGENT-NAME");
    gold_b_.Set("agent-phone", "AGENT-PHONE");

    target_ = MakeSource(
        "c.com",
        R"(<!ELEMENT home (area, extra-info, reach)>
           <!ELEMENT area (#PCDATA)>
           <!ELEMENT extra-info (#PCDATA)>
           <!ELEMENT reach (realtor, work-phone)>
           <!ELEMENT realtor (#PCDATA)>
           <!ELEMENT work-phone (#PCDATA)>)",
        {"home", "area", "extra-info", "reach", "realtor", "work-phone"}, 33);
    gold_target_.Set("home", "HOUSE");
    gold_target_.Set("area", "ADDRESS");
    gold_target_.Set("extra-info", "DESCRIPTION");
    gold_target_.Set("reach", "CONTACT-INFO");
    gold_target_.Set("realtor", "AGENT-NAME");
    gold_target_.Set("work-phone", "AGENT-PHONE");
  }

  static DataSource MakeSource(const std::string& name,
                               const std::string& dtd_text,
                               const std::vector<std::string>& tags,
                               uint64_t seed) {
    static const std::vector<std::string> kCities = {
        "Miami, FL",  "Boston, MA",  "Seattle, WA",
        "Austin, TX", "Portland, OR", "Denver, CO"};
    static const std::vector<std::string> kDescs = {
        "Fantastic house great location",
        "Beautiful home spacious yard",
        "Great views close to river",
        "Charming cottage near great schools",
        "Spacious home fantastic neighborhood"};
    static const std::vector<std::string> kNames = {
        "Kate Richardson", "Mike Smith", "Jane Kendall", "Matt Brown"};
    DataSource source;
    source.name = name;
    source.schema = ParseDtd(dtd_text).value();
    Rng rng(seed);
    for (int i = 0; i < 30; ++i) {
      std::string phone = "(" + std::to_string(rng.UniformInt(200, 999)) +
                          ") " + std::to_string(rng.UniformInt(200, 999)) +
                          " " + std::to_string(rng.UniformInt(1000, 9999));
      std::string xml = "<" + tags[0] + ">" +
                        "<" + tags[1] + ">" + rng.Pick(kCities) + "</" + tags[1] + ">" +
                        "<" + tags[2] + ">" + rng.Pick(kDescs) + "</" + tags[2] + ">" +
                        "<" + tags[3] + ">" +
                        "<" + tags[4] + ">" + rng.Pick(kNames) + "</" + tags[4] + ">" +
                        "<" + tags[5] + ">" + phone + "</" + tags[5] + ">" +
                        "</" + tags[3] + ">" +
                        "</" + tags[0] + ">";
      source.listings.push_back(ParseXml(xml).value());
    }
    return source;
  }

  std::unique_ptr<LsdSystem> MakeTrainedSystem(LsdConfig config = LsdConfig()) {
    auto system = std::make_unique<LsdSystem>(mediated_, config);
    EXPECT_TRUE(system->AddTrainingSource(source_a_, gold_a_).ok());
    EXPECT_TRUE(system->AddTrainingSource(source_b_, gold_b_).ok());
    EXPECT_TRUE(system->Train().ok());
    return system;
  }

  Dtd mediated_;
  DataSource source_a_, source_b_, target_;
  Mapping gold_a_, gold_b_, gold_target_;
};

TEST_F(LsdSystemTest, LearnerRosterFollowsConfig) {
  LsdConfig config;
  config.use_xml_learner = false;
  config.use_format_learner = true;
  LsdSystem system(mediated_, config);
  auto names = system.LearnerNames();
  EXPECT_EQ(names,
            (std::vector<std::string>{"name-matcher", "content-matcher",
                                      "naive-bayes", "format-learner"}));
}

TEST_F(LsdSystemTest, TrainRequiresSources) {
  LsdSystem system(mediated_, LsdConfig());
  EXPECT_EQ(system.Train().code(), StatusCode::kFailedPrecondition);
}

TEST_F(LsdSystemTest, MatchRequiresTraining) {
  LsdSystem system(mediated_, LsdConfig());
  EXPECT_FALSE(system.PredictSource(target_).ok());
}

TEST_F(LsdSystemTest, AddSourceAfterTrainRejected) {
  auto system = MakeTrainedSystem();
  EXPECT_EQ(system->AddTrainingSource(target_, gold_target_).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(LsdSystemTest, MatchesUnseenSourceByData) {
  auto system = MakeTrainedSystem();
  auto result = system->MatchSource(target_);
  ASSERT_TRUE(result.ok());
  // Data-driven tags must be recovered despite disjoint vocabulary.
  EXPECT_EQ(result->mapping.LabelOrOther("area"), "ADDRESS");
  EXPECT_EQ(result->mapping.LabelOrOther("extra-info"), "DESCRIPTION");
  EXPECT_EQ(result->mapping.LabelOrOther("work-phone"), "AGENT-PHONE");
}

TEST_F(LsdSystemTest, TagPredictionsAreDistributions) {
  auto system = MakeTrainedSystem();
  auto result = system->MatchSource(target_);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->tags.size(), 6u);
  for (const Prediction& p : result->tag_predictions) {
    double total = 0;
    for (double s : p.scores) {
      EXPECT_GE(s, 0.0);
      total += s;
    }
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
}

TEST_F(LsdSystemTest, DeterministicAcrossRuns) {
  auto run = [this] {
    auto system = MakeTrainedSystem();
    return system->MatchSource(target_)->mapping.ToString();
  };
  EXPECT_EQ(run(), run());
}

TEST_F(LsdSystemTest, LearnerSubsetSelection) {
  auto system = MakeTrainedSystem();
  MatchOptions options;
  options.learners = {"naive-bayes"};
  options.use_meta_learner = false;
  auto result = system->MatchSource(target_, options);
  ASSERT_TRUE(result.ok());
  // Still mostly correct from content alone.
  EXPECT_EQ(result->mapping.LabelOrOther("extra-info"), "DESCRIPTION");
}

TEST_F(LsdSystemTest, UnknownLearnerRejected) {
  auto system = MakeTrainedSystem();
  MatchOptions options;
  options.learners = {"no-such-learner"};
  EXPECT_FALSE(system->MatchSource(target_, options).ok());
}

TEST_F(LsdSystemTest, ConstraintsRepairFrequencyViolations) {
  auto system = MakeTrainedSystem();
  // At most one tag per label.
  for (const std::string& label : system->labels().labels()) {
    if (label != "OTHER") {
      system->AddConstraint(
          std::make_unique<FrequencyConstraint>(label, 0, 1));
    }
  }
  auto result = system->MatchSource(target_);
  ASSERT_TRUE(result.ok());
  // No label (except OTHER) may be used twice.
  std::map<std::string, int> counts;
  for (const auto& [tag, label] : result->mapping.entries()) {
    if (label != "OTHER") ++counts[label];
  }
  for (const auto& [label, count] : counts) EXPECT_LE(count, 1);
}

TEST_F(LsdSystemTest, OtherThresholdRedirectsWeakTags) {
  auto system = MakeTrainedSystem();
  auto preds = system->PredictSource(target_);
  ASSERT_TRUE(preds.ok());
  // An absurd threshold forces every tag to OTHER (nothing scores >= 1).
  MatchOptions options;
  options.other_threshold = 1.01;
  options.use_constraint_handler = false;
  auto all_other = system->MatchWithPredictions(*preds, target_, options);
  ASSERT_TRUE(all_other.ok());
  for (const auto& [tag, label] : all_other->mapping.entries()) {
    EXPECT_EQ(label, "OTHER") << tag;
  }
  // Threshold 0 (default) leaves predictions untouched.
  options.other_threshold = 0.0;
  auto untouched = system->MatchWithPredictions(*preds, target_, options);
  ASSERT_TRUE(untouched.ok());
  EXPECT_EQ(untouched->mapping.LabelOrOther("extra-info"), "DESCRIPTION");
  // A moderate threshold keeps confident tags while weak ones may move.
  options.other_threshold = 0.3;
  auto moderate = system->MatchWithPredictions(*preds, target_, options);
  ASSERT_TRUE(moderate.ok());
  EXPECT_EQ(moderate->mapping.LabelOrOther("extra-info"), "DESCRIPTION");
}

TEST_F(LsdSystemTest, FeedbackOverridesPrediction) {
  auto system = MakeTrainedSystem();
  std::vector<FeedbackConstraint> feedback = {
      FeedbackConstraint("area", "DESCRIPTION", /*must_equal=*/true)};
  auto result = system->MatchSource(target_, MatchOptions(), feedback);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->mapping.LabelOrOther("area"), "DESCRIPTION");
}

TEST_F(LsdSystemTest, PredictionsReusableAcrossOptions) {
  auto system = MakeTrainedSystem();
  auto preds = system->PredictSource(target_);
  ASSERT_TRUE(preds.ok());
  MatchOptions with_meta;
  MatchOptions without_meta;
  without_meta.use_meta_learner = false;
  auto a = system->MatchWithPredictions(*preds, target_, with_meta);
  auto b = system->MatchWithPredictions(*preds, target_, without_meta);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->tags, b->tags);
}

TEST_F(LsdSystemTest, MetaLearnerTrainedPerLabel) {
  auto system = MakeTrainedSystem();
  const MetaLearner& meta = system->meta_learner();
  EXPECT_TRUE(meta.trained());
  EXPECT_EQ(meta.learner_count(), system->LearnerNames().size());
  EXPECT_EQ(meta.label_count(), system->labels().size());
  // Non-negative stacking weights by default.
  for (size_t c = 0; c < meta.label_count(); ++c) {
    for (size_t l = 0; l < meta.learner_count(); ++l) {
      EXPECT_GE(meta.WeightOf(static_cast<int>(c), l), 0.0);
    }
  }
}

// ---------------------------------------------------------------------------
// Model persistence
// ---------------------------------------------------------------------------

TEST_F(LsdSystemTest, SaveLoadRoundTripReproducesMappings) {
  std::string path = ::testing::TempDir() + "/lsd_model_roundtrip.model";
  auto original = MakeTrainedSystem();
  ASSERT_TRUE(original->SaveModel(path).ok());
  auto expected = original->MatchSource(target_);
  ASSERT_TRUE(expected.ok());

  LsdSystem restored(mediated_, LsdConfig());
  ASSERT_TRUE(restored.LoadModel(path).ok());
  EXPECT_TRUE(restored.trained());
  auto actual = restored.MatchSource(target_);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(actual->mapping.entries(), expected->mapping.entries());
  // Converter outputs match to numerical round-trip precision.
  for (size_t t = 0; t < expected->tags.size(); ++t) {
    for (size_t c = 0; c < expected->tag_predictions[t].size(); ++c) {
      EXPECT_NEAR(actual->tag_predictions[t].scores[c],
                  expected->tag_predictions[t].scores[c], 1e-9);
    }
  }
  std::remove(path.c_str());
}

TEST_F(LsdSystemTest, SaveRequiresTrainedLoadRequiresUntrained) {
  std::string path = ::testing::TempDir() + "/lsd_model_guards.model";
  LsdSystem untrained(mediated_, LsdConfig());
  EXPECT_EQ(untrained.SaveModel(path).code(), StatusCode::kFailedPrecondition);
  auto trained = MakeTrainedSystem();
  ASSERT_TRUE(trained->SaveModel(path).ok());
  EXPECT_EQ(trained->LoadModel(path).code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST_F(LsdSystemTest, LoadRejectsRosterMismatch) {
  std::string path = ::testing::TempDir() + "/lsd_model_roster.model";
  auto trained = MakeTrainedSystem();  // default roster (includes XML learner)
  ASSERT_TRUE(trained->SaveModel(path).ok());
  LsdConfig other_config;
  other_config.use_xml_learner = false;
  LsdSystem mismatched(mediated_, other_config);
  EXPECT_FALSE(mismatched.LoadModel(path).ok());
  std::remove(path.c_str());
}

TEST_F(LsdSystemTest, LoadRejectsSchemaMismatch) {
  std::string path = ::testing::TempDir() + "/lsd_model_schema.model";
  auto trained = MakeTrainedSystem();
  ASSERT_TRUE(trained->SaveModel(path).ok());
  Dtd other = ParseDtd(R"(
    <!ELEMENT ROOT (ONLY)>
    <!ELEMENT ONLY (#PCDATA)>
  )").value();
  LsdSystem mismatched(other, LsdConfig());
  EXPECT_FALSE(mismatched.LoadModel(path).ok());
  std::remove(path.c_str());
}

TEST_F(LsdSystemTest, LoadedModelRejectsSubsetMeta) {
  std::string path = ::testing::TempDir() + "/lsd_model_subset.model";
  auto trained = MakeTrainedSystem();
  ASSERT_TRUE(trained->SaveModel(path).ok());
  LsdSystem restored(mediated_, LsdConfig());
  ASSERT_TRUE(restored.LoadModel(path).ok());
  MatchOptions subset;
  subset.learners = {"naive-bayes"};
  auto result = restored.MatchSource(target_, subset);
  EXPECT_FALSE(result.ok());
  // But the same subset works without the meta-learner.
  subset.use_meta_learner = false;
  EXPECT_TRUE(restored.MatchSource(target_, subset).ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// FeedbackSession
// ---------------------------------------------------------------------------

TEST_F(LsdSystemTest, FeedbackSessionRequiresInitialize) {
  auto system = MakeTrainedSystem();
  FeedbackSession session(system.get(), &target_);
  EXPECT_FALSE(session.CurrentMapping().ok());
  EXPECT_FALSE(session.RunWithOracle(gold_target_).ok());
}

TEST_F(LsdSystemTest, FeedbackSessionReviewOrderByStructure) {
  auto system = MakeTrainedSystem();
  FeedbackSession session(system.get(), &target_);
  auto order = session.ReviewOrder();
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order[0], "home");   // 5 descendants
  EXPECT_EQ(order[1], "reach");  // 2 descendants
}

TEST_F(LsdSystemTest, OracleReachesPerfectMatching) {
  auto system = MakeTrainedSystem();
  // At-most-one constraints so the handler can propagate corrections.
  for (const std::string& label : system->labels().labels()) {
    if (label != "OTHER") {
      system->AddConstraint(
          std::make_unique<FrequencyConstraint>(label, 0, 1));
    }
  }
  FeedbackSession session(system.get(), &target_);
  ASSERT_TRUE(session.Initialize().ok());
  auto stats = session.RunWithOracle(gold_target_);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->reached_perfect);
  EXPECT_EQ(stats->tags_total, 6u);
  // The system is already good; few corrections should be needed.
  EXPECT_LE(stats->corrections, 4u);
  // Final mapping really is perfect.
  auto final_mapping = session.CurrentMapping();
  ASSERT_TRUE(final_mapping.ok());
  for (const auto& [tag, label] : gold_target_.entries()) {
    EXPECT_EQ(final_mapping->mapping.LabelOrOther(tag), label) << tag;
  }
}

TEST_F(LsdSystemTest, ManualFeedbackAccumulates) {
  auto system = MakeTrainedSystem();
  FeedbackSession session(system.get(), &target_);
  ASSERT_TRUE(session.Initialize().ok());
  session.AddFeedback(FeedbackConstraint("area", "ADDRESS", true));
  session.AddFeedback(FeedbackConstraint("extra-info", "DESCRIPTION", true));
  EXPECT_EQ(session.feedback().size(), 2u);
  auto result = session.CurrentMapping();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->mapping.LabelOrOther("area"), "ADDRESS");
}

}  // namespace
}  // namespace lsd
