#include <algorithm>
#include <memory>

#include "gtest/gtest.h"
#include "learners/content_matcher.h"
#include "learners/county_recognizer.h"
#include "learners/format_learner.h"
#include "learners/name_matcher.h"
#include "learners/naive_bayes_learner.h"
#include "learners/xml_learner.h"
#include "xml/xml_parser.h"

namespace lsd {
namespace {

Instance MakeInstance(const std::string& tag, const std::string& path,
                      const std::string& content) {
  Instance instance;
  instance.tag_name = tag;
  instance.name_path = path;
  instance.content = content;
  return instance;
}

TrainingExample Example(const std::string& tag, const std::string& content,
                        int label) {
  TrainingExample e;
  e.instance = MakeInstance(tag, tag, content);
  e.label = label;
  return e;
}

// A small real-estate training set: ADDRESS=0, DESCRIPTION=1, PHONE=2.
std::vector<TrainingExample> RealEstateExamples() {
  return {
      Example("location", "Miami, FL", 0),
      Example("location", "Boston, MA", 0),
      Example("house-addr", "Seattle, WA", 0),
      Example("house-addr", "Portland, OR", 0),
      Example("comments", "Fantastic house great location", 1),
      Example("comments", "Nice area close to river", 1),
      Example("detailed-desc", "Great yard beautiful home", 1),
      Example("detailed-desc", "Fantastic views must see", 1),
      Example("contact", "(305) 729 0831", 2),
      Example("contact", "(617) 253 1429", 2),
      Example("phone", "(206) 753 2605", 2),
      Example("phone", "(515) 273 4312", 2),
  };
}

LabelSpace RealEstateLabels() {
  return LabelSpace({"ADDRESS", "DESCRIPTION", "AGENT-PHONE"});
}

// ---------------------------------------------------------------------------
// Name matcher
// ---------------------------------------------------------------------------

TEST(NameMatcherTest, MatchesSharedNameWords) {
  NameMatcher matcher;
  LabelSpace labels = RealEstateLabels();
  ASSERT_TRUE(matcher.Train(RealEstateExamples(), labels).ok());
  // "agent-phone" shares the word "phone" with trained AGENT-PHONE names.
  Prediction p = matcher.Predict(
      MakeInstance("agent-phone", "listing agent-phone", "(111) 222 3333"));
  EXPECT_EQ(p.Best(), labels.IndexOf("AGENT-PHONE"));
}

TEST(NameMatcherTest, UsesSynonymExpansion) {
  NameMatcher matcher;
  LabelSpace labels = RealEstateLabels();
  ASSERT_TRUE(matcher.Train(RealEstateExamples(), labels).ok());
  Instance instance = MakeInstance("tel", "listing tel", "123");
  instance.name_synonyms = "phone telephone";
  Prediction with_synonyms = matcher.Predict(instance);
  EXPECT_EQ(with_synonyms.Best(), labels.IndexOf("AGENT-PHONE"));
}

TEST(NameMatcherTest, VacuousNameGivesLowConfidence) {
  NameMatcher matcher;
  LabelSpace labels = RealEstateLabels();
  ASSERT_TRUE(matcher.Train(RealEstateExamples(), labels).ok());
  Prediction p = matcher.Predict(MakeInstance("item", "listing item", "x"));
  // No overlap at all: close to uniform.
  double spread = *std::max_element(p.scores.begin(), p.scores.end()) -
                  *std::min_element(p.scores.begin(), p.scores.end());
  EXPECT_LT(spread, 0.1);
}

TEST(NameMatcherTest, NameTokensUpweightOwnName) {
  Instance instance = MakeInstance("agent-phone", "listing contact agent-phone",
                                   "ignored");
  auto tokens = NameMatcher::NameTokens(instance);
  // Own-name tokens are doubled relative to path context.
  EXPECT_EQ(std::count(tokens.begin(), tokens.end(), "phone"), 3);
  EXPECT_EQ(std::count(tokens.begin(), tokens.end(), "contact"), 1);
}

TEST(NameMatcherTest, CloneUntrainedIsIndependent) {
  NameMatcher matcher;
  LabelSpace labels = RealEstateLabels();
  ASSERT_TRUE(matcher.Train(RealEstateExamples(), labels).ok());
  auto clone = matcher.CloneUntrained();
  // Untrained clone must not crash and returns uniform-zero.
  Prediction p = clone->Predict(MakeInstance("phone", "phone", "1"));
  EXPECT_EQ(p.size(), 0u);
}

// ---------------------------------------------------------------------------
// Content matcher
// ---------------------------------------------------------------------------

TEST(ContentMatcherTest, MatchesByVocabulary) {
  ContentMatcher matcher;
  LabelSpace labels = RealEstateLabels();
  ASSERT_TRUE(matcher.Train(RealEstateExamples(), labels).ok());
  Prediction p = matcher.Predict(
      MakeInstance("x", "x", "Fantastic location great house"));
  EXPECT_EQ(p.Best(), labels.IndexOf("DESCRIPTION"));
}

TEST(ContentMatcherTest, MatchesCityContent) {
  ContentMatcher matcher;
  LabelSpace labels = RealEstateLabels();
  ASSERT_TRUE(matcher.Train(RealEstateExamples(), labels).ok());
  Prediction p = matcher.Predict(MakeInstance("y", "y", "Miami, FL"));
  EXPECT_EQ(p.Best(), labels.IndexOf("ADDRESS"));
}

// ---------------------------------------------------------------------------
// Naive Bayes learner
// ---------------------------------------------------------------------------

TEST(NaiveBayesLearnerTest, FrequencySignalWords) {
  NaiveBayesLearner learner;
  LabelSpace labels = RealEstateLabels();
  ASSERT_TRUE(learner.Train(RealEstateExamples(), labels).ok());
  Prediction p = learner.Predict(
      MakeInstance("extra-info", "extra-info", "Great location fantastic"));
  EXPECT_EQ(p.Best(), labels.IndexOf("DESCRIPTION"));
}

TEST(NaiveBayesLearnerTest, PhoneDigitsViaSymbols) {
  NaiveBayesLearner learner;
  LabelSpace labels = RealEstateLabels();
  ASSERT_TRUE(learner.Train(RealEstateExamples(), labels).ok());
  // Phone parentheses tokens are learned from the training phones.
  Prediction p = learner.Predict(
      MakeInstance("work-phone", "work-phone", "(425) 555 1234"));
  EXPECT_EQ(p.Best(), labels.IndexOf("AGENT-PHONE"));
}

// ---------------------------------------------------------------------------
// County recognizer
// ---------------------------------------------------------------------------

TEST(CountyRecognizerTest, RecognitionScore) {
  CountyRecognizer recognizer("COUNTY");
  EXPECT_DOUBLE_EQ(recognizer.RecognitionScore("King"), 1.0);
  EXPECT_DOUBLE_EQ(recognizer.RecognitionScore("not a real word zzz"), 0.0);
  EXPECT_GT(recognizer.RecognitionScore("King county"), 0.0);
}

TEST(CountyRecognizerTest, PredictsTargetLabelOnMatch) {
  CountyRecognizer recognizer("COUNTY");
  LabelSpace labels({"COUNTY", "PRICE"});
  ASSERT_TRUE(recognizer.Train({}, labels).ok());
  Prediction hit = recognizer.Predict(MakeInstance("cnty", "cnty", "Pierce"));
  EXPECT_EQ(hit.Best(), labels.IndexOf("COUNTY"));
  Prediction miss =
      recognizer.Predict(MakeInstance("price", "price", "$250,000"));
  EXPECT_LT(miss.ScoreOf(labels.IndexOf("COUNTY")),
            miss.ScoreOf(labels.IndexOf("PRICE")));
}

TEST(CountyRecognizerTest, MissingTargetLabelFallsBackToUniform) {
  CountyRecognizer recognizer("COUNTY");
  LabelSpace labels({"PRICE", "ADDRESS"});
  ASSERT_TRUE(recognizer.Train({}, labels).ok());
  Prediction p = recognizer.Predict(MakeInstance("cnty", "cnty", "King"));
  for (double s : p.scores) EXPECT_NEAR(s, 1.0 / labels.size(), 1e-9);
}

TEST(CountyRecognizerTest, MultiWordCountiesIndexed) {
  CountyRecognizer recognizer("COUNTY");
  EXPECT_GT(recognizer.RecognitionScore("palm beach"), 0.9);
  EXPECT_GT(recognizer.RecognitionScore("san diego"), 0.9);
}

// ---------------------------------------------------------------------------
// Format learner
// ---------------------------------------------------------------------------

TEST(FormatLearnerTest, FormatTokensAbstractShape) {
  auto tokens = FormatLearner::FormatTokens("CSE142");
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "sig:A393"), tokens.end());
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "type:mixed"),
            tokens.end());
}

TEST(FormatLearnerTest, DistinguishesCourseCodesFromTitles) {
  FormatLearner learner;
  LabelSpace labels({"COURSE-CODE", "COURSE-TITLE"});
  std::vector<TrainingExample> examples = {
      Example("code", "CSE142", 0),     Example("code", "MATH126", 0),
      Example("code", "PHYS121", 0),    Example("code", "EE205", 0),
      Example("title", "Introduction to Programming", 1),
      Example("title", "Linear Algebra", 1),
      Example("title", "Quantum Mechanics", 1),
      Example("title", "Data Structures", 1),
  };
  ASSERT_TRUE(learner.Train(examples, labels).ok());
  EXPECT_EQ(learner.Predict(MakeInstance("x", "x", "BIOL180")).Best(),
            labels.IndexOf("COURSE-CODE"));
  EXPECT_EQ(learner.Predict(MakeInstance("x", "x", "Operating Systems")).Best(),
            labels.IndexOf("COURSE-TITLE"));
}

TEST(FormatLearnerTest, DistinguishesPhonesFromZips) {
  FormatLearner learner;
  LabelSpace labels({"PHONE", "ZIP"});
  std::vector<TrainingExample> examples = {
      Example("p", "(206) 555 0123", 0), Example("p", "(425) 555 9876", 0),
      Example("p", "(305) 555 4567", 0), Example("z", "98105", 1),
      Example("z", "02139", 1),          Example("z", "33109", 1),
  };
  ASSERT_TRUE(learner.Train(examples, labels).ok());
  EXPECT_EQ(learner.Predict(MakeInstance("x", "x", "(617) 555 1111")).Best(),
            labels.IndexOf("PHONE"));
  EXPECT_EQ(learner.Predict(MakeInstance("x", "x", "60601")).Best(),
            labels.IndexOf("ZIP"));
}

// ---------------------------------------------------------------------------
// XML learner
// ---------------------------------------------------------------------------

class TestLabeler : public NodeLabeler {
 public:
  void Set(const std::string& tag, const std::string& label) {
    map_[tag] = label;
  }
  std::string LabelOf(const std::string& tag) const override {
    auto it = map_.find(tag);
    return it == map_.end() ? std::string() : it->second;
  }

 private:
  std::map<std::string, std::string> map_;
};

TEST(XmlLearnerTest, StructureTokensMatchTable2) {
  // The paper's Figure 7: <contact><name>Gail Murphy</name>
  //                       <firm>MAX Realtors</firm></contact>
  auto node = ParseXmlElement(
      "<contact><name>Gail Murphy</name><firm>MAX Realtors</firm></contact>");
  ASSERT_TRUE(node.ok());
  TestLabeler labeler;
  labeler.Set("name", "AGENT-NAME");
  labeler.Set("firm", "OFFICE-NAME");
  auto tokens = XmlLearner::StructureTokens(*node, &labeler);
  auto has = [&](const std::string& token) {
    return std::find(tokens.begin(), tokens.end(), token) != tokens.end();
  };
  // Node tokens (Figure 7.f).
  EXPECT_TRUE(has("n:AGENT-NAME"));
  EXPECT_TRUE(has("n:OFFICE-NAME"));
  // Edge tokens from the generic root d.
  EXPECT_TRUE(has("e:d>AGENT-NAME"));
  EXPECT_TRUE(has("e:d>OFFICE-NAME"));
  // Label -> word edge tokens.
  EXPECT_TRUE(has("e:AGENT-NAME>gail"));
  EXPECT_TRUE(has("e:OFFICE-NAME>realtor"));
  // Text tokens (stemmed).
  EXPECT_TRUE(has("w:gail"));
  EXPECT_TRUE(has("w:murphi"));
}

TEST(XmlLearnerTest, NullLabelerFallsBackToTagNames) {
  auto node = ParseXmlElement("<contact><name>Gail</name></contact>");
  ASSERT_TRUE(node.ok());
  auto tokens = XmlLearner::StructureTokens(*node, nullptr);
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "n:name"), tokens.end());
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "e:d>name"), tokens.end());
}

TEST(XmlLearnerTest, DistinguishesClassesSharingWords) {
  // CONTACT-INFO and DESCRIPTION share all words; only structure (node and
  // edge tokens) separates them — the paper's motivating case (Figure 7.a).
  TestLabeler labeler;
  labeler.Set("name", "AGENT-NAME");
  labeler.Set("firm", "OFFICE-NAME");
  XmlLearner learner(&labeler);
  LabelSpace labels({"CONTACT-INFO", "DESCRIPTION"});

  std::vector<XmlNode> keep_alive;
  auto structured = [&](const std::string& who, const std::string& office) {
    keep_alive.push_back(
        ParseXmlElement("<contact><name>" + who + "</name><firm>" + office +
                        "</firm></contact>")
            .value());
    return keep_alive.size() - 1;
  };
  auto flat = [&](const std::string& text) {
    keep_alive.push_back(
        ParseXmlElement("<description>" + text + "</description>").value());
    return keep_alive.size() - 1;
  };
  // Build examples; reserve so node pointers stay valid.
  keep_alive.reserve(16);
  std::vector<std::pair<size_t, int>> spec = {
      {structured("Gail Murphy", "MAX Realtors"), 0},
      {structured("Kate Smith", "Windermere"), 0},
      {structured("Mike Brown", "RE MAX"), 0},
      {flat("Victorian house contact Gail Murphy at MAX Realtors"), 1},
      {flat("Great home call Kate Smith of Windermere"), 1},
      {flat("Must see ask for Mike Brown RE MAX"), 1},
  };
  std::vector<TrainingExample> examples;
  for (auto& [index, label] : spec) {
    TrainingExample e;
    e.instance.tag_name = keep_alive[index].name;
    e.instance.name_path = keep_alive[index].name;
    e.instance.content = keep_alive[index].DeepText();
    e.instance.node = &keep_alive[index];
    e.label = label;
    examples.push_back(e);
  }
  ASSERT_TRUE(learner.Train(examples, labels).ok());

  keep_alive.push_back(
      ParseXmlElement("<info><name>Jane Kendall</name>"
                      "<firm>Coldwell Banker</firm></info>")
          .value());
  Instance query;
  query.tag_name = "info";
  query.node = &keep_alive.back();
  query.content = keep_alive.back().DeepText();
  EXPECT_EQ(learner.Predict(query).Best(), labels.IndexOf("CONTACT-INFO"));

  keep_alive.push_back(
      ParseXmlElement("<blurb>lovely place call Jane Kendall of Coldwell "
                      "Banker today</blurb>")
          .value());
  Instance flat_query;
  flat_query.tag_name = "blurb";
  flat_query.node = &keep_alive.back();
  flat_query.content = keep_alive.back().DeepText();
  EXPECT_EQ(learner.Predict(flat_query).Best(), labels.IndexOf("DESCRIPTION"));
}

TEST(XmlLearnerTest, NullNodeFallsBackToContent) {
  XmlLearner learner(nullptr);
  LabelSpace labels({"A", "B"});
  std::vector<TrainingExample> examples = {
      Example("x", "alpha beta", 0), Example("y", "gamma delta", 1),
      Example("x2", "alpha alpha", 0), Example("y2", "delta gamma", 1)};
  ASSERT_TRUE(learner.Train(examples, labels).ok());
  EXPECT_EQ(learner.Predict(MakeInstance("q", "q", "alpha")).Best(), 0);
}

}  // namespace
}  // namespace lsd
