// Prediction-cache tests: the PredCache container itself (LRU order,
// sharding, counters, concurrency), the learner-side contracts it depends
// on (content fingerprints, PredictBatch byte-identity with scalar
// Predict), and the system-level invariant that justifies the whole
// feature — cache-on output is byte-identical to cache-off, warm or cold.

#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "common/pred_cache.h"
#include "core/lsd_system.h"
#include "datagen/domains.h"
#include "gtest/gtest.h"
#include "learners/content_matcher.h"
#include "learners/format_learner.h"
#include "learners/naive_bayes_learner.h"
#include "learners/name_matcher.h"
#include "ml/learner.h"

namespace lsd {
namespace {

Instance MakeInstance(const std::string& tag, const std::string& path,
                      const std::string& content) {
  Instance instance;
  instance.tag_name = tag;
  instance.name_path = path;
  instance.content = content;
  return instance;
}

TrainingExample Example(const std::string& tag, const std::string& content,
                        int label) {
  TrainingExample e;
  e.instance = MakeInstance(tag, tag, content);
  e.label = label;
  return e;
}

// A small real-estate training set: ADDRESS=0, DESCRIPTION=1, PHONE=2.
std::vector<TrainingExample> RealEstateExamples() {
  return {
      Example("location", "Miami, FL", 0),
      Example("location", "Boston, MA", 0),
      Example("house-addr", "Seattle, WA", 0),
      Example("house-addr", "Portland, OR", 0),
      Example("comments", "Fantastic house great location", 1),
      Example("comments", "Nice area close to river", 1),
      Example("detailed-desc", "Great yard beautiful home", 1),
      Example("detailed-desc", "Fantastic views must see", 1),
      Example("contact", "(305) 729 0831", 2),
      Example("contact", "(617) 253 1429", 2),
      Example("phone", "(206) 753 2605", 2),
      Example("phone", "(515) 273 4312", 2),
  };
}

LabelSpace RealEstateLabels() {
  return LabelSpace({"ADDRESS", "DESCRIPTION", "AGENT-PHONE"});
}

/// Instances the learner tests batch over; duplicates are intentional (a
/// batch from a real column repeats values constantly).
std::vector<Instance> ProbeInstances() {
  return {
      MakeInstance("location", "listing location", "Denver, CO"),
      MakeInstance("phone", "listing phone", "(303) 555 0100"),
      MakeInstance("comments", "listing comments", "charming house nice yard"),
      MakeInstance("location", "listing location", "Denver, CO"),
      MakeInstance("item", "listing item", ""),
      MakeInstance("phone", "listing phone", "(303) 555 0100"),
  };
}

// ---------------------------------------------------------------------------
// PredCache container
// ---------------------------------------------------------------------------

TEST(PredCacheTest, MissThenHitReturnsExactBytes) {
  PredCache cache(64);
  const std::vector<double> scores = {0.1 + 0.2, 1.0 / 3.0, 1e-300};
  std::vector<double> out = {7.0};
  EXPECT_FALSE(cache.Lookup(1, 2, &out));
  EXPECT_EQ(out, std::vector<double>{7.0});  // miss leaves output untouched
  cache.Insert(1, 2, scores);
  ASSERT_TRUE(cache.Lookup(1, 2, &out));
  ASSERT_EQ(out.size(), scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    // Bitwise equality, not approximate: a hit must replay the exact bytes.
    EXPECT_EQ(out[i], scores[i]);
  }
  PredCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(PredCacheTest, KeysAreLearnerScoped) {
  PredCache cache(64);
  cache.Insert(1, 42, {1.0});
  std::vector<double> out;
  EXPECT_FALSE(cache.Lookup(2, 42, &out));  // other learner, same instance
  EXPECT_TRUE(cache.Lookup(1, 42, &out));
}

TEST(PredCacheTest, LruEvictionIsDeterministicWithinAShard) {
  // 32 entries over 16 shards = capacity 2 per shard. All three keys land
  // in shard 3 (hash ≡ 3 mod 16), so the shard's LRU order is fully
  // observable.
  PredCache cache(32);
  const uint64_t a = 3, b = 19, c = 35;
  ASSERT_EQ(PredCache::ShardIndex(a), PredCache::ShardIndex(b));
  ASSERT_EQ(PredCache::ShardIndex(a), PredCache::ShardIndex(c));
  cache.Insert(1, a, {1.0});
  cache.Insert(1, b, {2.0});
  std::vector<double> out;
  ASSERT_TRUE(cache.Lookup(1, a, &out));  // refresh a: b is now LRU
  cache.Insert(1, c, {3.0});              // evicts b
  EXPECT_TRUE(cache.Lookup(1, a, &out));
  EXPECT_TRUE(cache.Lookup(1, c, &out));
  EXPECT_FALSE(cache.Lookup(1, b, &out));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(PredCacheTest, CapacityFloorIsOneEntryPerShard) {
  PredCache cache(1);  // far below kShards; every shard still holds one
  cache.Insert(1, 5, {1.0});
  cache.Insert(1, 21, {2.0});  // same shard as 5: evicts it
  cache.Insert(1, 6, {3.0});   // different shard: coexists
  std::vector<double> out;
  EXPECT_FALSE(cache.Lookup(1, 5, &out));
  EXPECT_TRUE(cache.Lookup(1, 21, &out));
  EXPECT_TRUE(cache.Lookup(1, 6, &out));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PredCacheTest, ReinsertRefreshesInsteadOfDuplicating) {
  PredCache cache(64);
  cache.Insert(1, 2, {1.0});
  cache.Insert(1, 2, {1.0});
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PredCacheTest, ClearDropsEntriesKeepsCumulativeStats) {
  PredCache cache(64);
  cache.Insert(1, 2, {1.0});
  std::vector<double> out;
  ASSERT_TRUE(cache.Lookup(1, 2, &out));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(1, 2, &out));
  PredCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(PredCacheTest, ConcurrentAccessKeepsCountersConsistent) {
  // Also runs under TSan via scripts/check.sh. Hit/miss split varies with
  // interleaving; hits + misses == lookups never does.
  PredCache cache(128);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      std::vector<double> out;
      for (int i = 0; i < kOpsPerThread; ++i) {
        uint64_t hash = static_cast<uint64_t>((t * 31 + i) % 200);
        if (!cache.Lookup(1, hash, &out)) {
          cache.Insert(1, hash, {static_cast<double>(hash)});
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  PredCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_GT(stats.hits, 0u);
  // Values are keyed by content, so whatever survived is correct.
  std::vector<double> out;
  for (uint64_t hash = 0; hash < 200; ++hash) {
    if (cache.Lookup(1, hash, &out)) {
      ASSERT_EQ(out.size(), 1u);
      EXPECT_EQ(out[0], static_cast<double>(hash));
    }
  }
}

// ---------------------------------------------------------------------------
// Instance hashing and learner fingerprints
// ---------------------------------------------------------------------------

TEST(InstanceCacheHashTest, SensitiveToEveryValueField) {
  Instance base = MakeInstance("phone", "listing phone", "(111) 222 3333");
  base.name_synonyms = "telephone";
  uint64_t h = InstanceCacheHash(base);
  EXPECT_EQ(h, InstanceCacheHash(base));

  Instance other = base;
  other.content = "(111) 222 3334";
  EXPECT_NE(InstanceCacheHash(other), h);
  other = base;
  other.tag_name = "fax";
  EXPECT_NE(InstanceCacheHash(other), h);
  other = base;
  other.name_path = "listing contact phone";
  EXPECT_NE(InstanceCacheHash(other), h);
  other = base;
  other.name_synonyms = "";
  EXPECT_NE(InstanceCacheHash(other), h);

  // Bookkeeping fields are excluded: the same value in a different listing
  // must share one entry.
  other = base;
  other.listing_index = 99;
  EXPECT_EQ(InstanceCacheHash(other), h);
}

TEST(FingerprintTest, ModelBytesFingerprintIsContentDetermined) {
  EXPECT_EQ(FingerprintModelBytes("nb", "model-bytes"),
            FingerprintModelBytes("nb", "model-bytes"));
  EXPECT_NE(FingerprintModelBytes("nb", "model-bytes"),
            FingerprintModelBytes("whirl", "model-bytes"));
  EXPECT_NE(FingerprintModelBytes("nb", "model-bytes"),
            FingerprintModelBytes("nb", "other-bytes"));
  EXPECT_NE(FingerprintModelBytes("nb", ""), 0u);
}

TEST(FingerprintTest, UntrainedLearnersAreUncacheable) {
  EXPECT_EQ(NaiveBayesLearner().CacheFingerprint(), 0u);
  EXPECT_EQ(ContentMatcher().CacheFingerprint(), 0u);
  EXPECT_EQ(FormatLearner().CacheFingerprint(), 0u);
  EXPECT_EQ(NameMatcher().CacheFingerprint(), 0u);
}

TEST(FingerprintTest, IdenticallyTrainedLearnersShareAFingerprint) {
  LabelSpace labels = RealEstateLabels();
  NaiveBayesLearner a, b;
  ASSERT_TRUE(a.Train(RealEstateExamples(), labels).ok());
  ASSERT_TRUE(b.Train(RealEstateExamples(), labels).ok());
  EXPECT_NE(a.CacheFingerprint(), 0u);
  EXPECT_EQ(a.CacheFingerprint(), b.CacheFingerprint());

  // A learner restored from the serialized model is the same content.
  auto model = a.SerializeModel();
  ASSERT_TRUE(model.ok());
  NaiveBayesLearner restored;
  ASSERT_TRUE(restored.LoadModel(*model).ok());
  EXPECT_EQ(restored.CacheFingerprint(), a.CacheFingerprint());

  // Different training data must produce a different fingerprint.
  std::vector<TrainingExample> fewer = RealEstateExamples();
  fewer.pop_back();
  NaiveBayesLearner c;
  ASSERT_TRUE(c.Train(fewer, labels).ok());
  EXPECT_NE(c.CacheFingerprint(), a.CacheFingerprint());
}

TEST(FingerprintTest, RetrainingResetsTheFingerprint) {
  LabelSpace labels = RealEstateLabels();
  NaiveBayesLearner learner;
  ASSERT_TRUE(learner.Train(RealEstateExamples(), labels).ok());
  uint64_t before = learner.CacheFingerprint();
  std::vector<TrainingExample> fewer = RealEstateExamples();
  fewer.pop_back();
  ASSERT_TRUE(learner.Train(fewer, labels).ok());
  EXPECT_NE(learner.CacheFingerprint(), before);
}

// ---------------------------------------------------------------------------
// PredictBatch == Predict, bit for bit
// ---------------------------------------------------------------------------

void ExpectBatchMatchesScalar(const BaseLearner& learner) {
  std::vector<Instance> instances = ProbeInstances();
  std::vector<const Instance*> batch;
  for (const Instance& instance : instances) batch.push_back(&instance);
  std::vector<Prediction> batched;
  learner.PredictBatch(batch, &batched);
  ASSERT_EQ(batched.size(), instances.size());
  for (size_t i = 0; i < instances.size(); ++i) {
    Prediction scalar = learner.Predict(instances[i]);
    ASSERT_EQ(batched[i].scores.size(), scalar.scores.size()) << i;
    for (size_t c = 0; c < scalar.scores.size(); ++c) {
      // Exact equality: the cache depends on batched predictions being
      // byte-identical to scalar ones, not merely close.
      EXPECT_EQ(batched[i].scores[c], scalar.scores[c])
          << learner.name() << " instance " << i << " class " << c;
    }
  }
}

TEST(PredictBatchTest, NaiveBayesLearnerMatchesScalarExactly) {
  NaiveBayesLearner learner;
  ASSERT_TRUE(learner.Train(RealEstateExamples(), RealEstateLabels()).ok());
  ExpectBatchMatchesScalar(learner);
}

TEST(PredictBatchTest, ContentMatcherMatchesScalarExactly) {
  ContentMatcher learner;
  ASSERT_TRUE(learner.Train(RealEstateExamples(), RealEstateLabels()).ok());
  ExpectBatchMatchesScalar(learner);
}

TEST(PredictBatchTest, FormatLearnerMatchesScalarExactly) {
  FormatLearner learner;
  ASSERT_TRUE(learner.Train(RealEstateExamples(), RealEstateLabels()).ok());
  ExpectBatchMatchesScalar(learner);
}

TEST(PredictBatchTest, NameMatcherDefaultLoopMatchesScalarExactly) {
  NameMatcher learner;
  ASSERT_TRUE(learner.Train(RealEstateExamples(), RealEstateLabels()).ok());
  ExpectBatchMatchesScalar(learner);
}

TEST(PredictBatchTest, UntrainedBatchMatchesUntrainedScalar) {
  ExpectBatchMatchesScalar(NaiveBayesLearner());
  ExpectBatchMatchesScalar(ContentMatcher());
  ExpectBatchMatchesScalar(FormatLearner());
}

// ---------------------------------------------------------------------------
// System-level: cache-on output is byte-identical to cache-off
// ---------------------------------------------------------------------------

std::unique_ptr<LsdSystem> TrainedSystem(const Domain& domain,
                                         size_t pred_cache_entries) {
  LsdConfig config;
  config.pred_cache_entries = pred_cache_entries;
  auto system = std::make_unique<LsdSystem>(domain.mediated, config,
                                            &domain.synonyms);
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_TRUE(system
                    ->AddTrainingSource(domain.sources[s].source,
                                        domain.sources[s].gold)
                    .ok());
  }
  EXPECT_TRUE(system->Train().ok());
  return system;
}

void ExpectIdenticalResults(const MatchResult& a, const MatchResult& b) {
  EXPECT_EQ(a.mapping.ToString(), b.mapping.ToString());
  ASSERT_EQ(a.tags, b.tags);
  for (size_t t = 0; t < a.tags.size(); ++t) {
    ASSERT_EQ(a.tag_predictions[t].scores.size(),
              b.tag_predictions[t].scores.size());
    for (size_t c = 0; c < a.tag_predictions[t].scores.size(); ++c) {
      EXPECT_EQ(a.tag_predictions[t].scores[c], b.tag_predictions[t].scores[c])
          << a.tags[t] << " class " << c;
    }
  }
}

TEST(PredCacheSystemTest, CachedMatchIsByteIdenticalColdAndWarm) {
  auto domain = MakeEvaluationDomain("real-estate-1", /*num_sources=*/5,
                                     /*listings=*/25, /*seed=*/7);
  ASSERT_TRUE(domain.ok());
  std::unique_ptr<LsdSystem> uncached = TrainedSystem(*domain, 0);
  std::unique_ptr<LsdSystem> cached = TrainedSystem(*domain, 4096);
  ASSERT_EQ(uncached->prediction_cache(), nullptr);
  ASSERT_NE(cached->prediction_cache(), nullptr);

  const DataSource& target = domain->sources[4].source;
  auto baseline = uncached->MatchSource(target);
  ASSERT_TRUE(baseline.ok());

  // Cold pass: every lookup misses, output must not change.
  auto cold = cached->MatchSource(target);
  ASSERT_TRUE(cold.ok());
  ExpectIdenticalResults(*baseline, *cold);
  PredCache::Stats after_cold = cached->prediction_cache()->stats();
  EXPECT_EQ(after_cold.hits, 0u);
  EXPECT_GT(after_cold.insertions, 0u);

  // Warm pass: the same request served from the cache, still identical.
  auto warm = cached->MatchSource(target);
  ASSERT_TRUE(warm.ok());
  ExpectIdenticalResults(*baseline, *warm);
  PredCache::Stats after_warm = cached->prediction_cache()->stats();
  EXPECT_GT(after_warm.hits, 0u);
}

TEST(PredCacheSystemTest, ReplicasShareWarmEntriesThroughOneCache) {
  auto domain = MakeEvaluationDomain("real-estate-1", /*num_sources=*/5,
                                     /*listings=*/25, /*seed=*/7);
  ASSERT_TRUE(domain.ok());
  // Two independently trained (but identical) replicas attached to one
  // cache — the MatchService topology. The second replica's first match
  // must hit on entries the first replica wrote.
  std::unique_ptr<LsdSystem> first = TrainedSystem(*domain, 0);
  std::unique_ptr<LsdSystem> second = TrainedSystem(*domain, 0);
  auto shared = std::make_shared<PredCache>(4096);
  first->SetPredictionCache(shared);
  second->SetPredictionCache(shared);

  const DataSource& target = domain->sources[3].source;
  auto through_first = first->MatchSource(target);
  ASSERT_TRUE(through_first.ok());
  uint64_t hits_before = shared->stats().hits;
  auto through_second = second->MatchSource(target);
  ASSERT_TRUE(through_second.ok());
  EXPECT_GT(shared->stats().hits, hits_before);
  ExpectIdenticalResults(*through_first, *through_second);
}

TEST(PredCacheSystemTest, DifferentlyTrainedReplicasNeverShareEntries) {
  auto domain = MakeEvaluationDomain("real-estate-1", /*num_sources=*/5,
                                     /*listings=*/25, /*seed=*/7);
  ASSERT_TRUE(domain.ok());
  // Two *different* models behind one cache — the hot-reload topology
  // while an old generation drains next to a new one. Keys embed each
  // learner's content fingerprint, so version A's entries must be
  // invisible to version B: stale scores crossing a model swap would be
  // silent wrong answers.
  std::unique_ptr<LsdSystem> version_a = TrainedSystem(*domain, 0);
  LsdConfig config;
  auto version_b = std::make_unique<LsdSystem>(domain->mediated, config,
                                               &domain->synonyms);
  for (size_t s = 0; s < 2; ++s) {  // one source fewer than version_a
    ASSERT_TRUE(version_b
                    ->AddTrainingSource(domain->sources[s].source,
                                        domain->sources[s].gold)
                    .ok());
  }
  ASSERT_TRUE(version_b->Train().ok());

  // Solo baseline for version B, no cache anywhere.
  const DataSource& target = domain->sources[4].source;
  auto solo_b = version_b->MatchSource(target);
  ASSERT_TRUE(solo_b.ok());

  auto shared = std::make_shared<PredCache>(4096);
  version_a->SetPredictionCache(shared);
  version_b->SetPredictionCache(shared);

  // Version A fills the cache for this target.
  ASSERT_TRUE(version_a->MatchSource(target).ok());
  PredCache::Stats after_a = shared->stats();
  EXPECT_GT(after_a.insertions, 0u);

  // Version B matches the same target through the same cache: zero hits
  // on A's entries, and output byte-identical to its cache-free solo run.
  auto through_b = version_b->MatchSource(target);
  ASSERT_TRUE(through_b.ok());
  EXPECT_EQ(shared->stats().hits, after_a.hits);
  ExpectIdenticalResults(*solo_b, *through_b);
}

}  // namespace
}  // namespace lsd
