// MatchService tests: circuit-breaker state machine, admission control and
// load shedding, retry/backoff wiring, per-request deadlines, and strict
// cross-request isolation. Every test that needs a blocked worker uses an
// interceptor gate, and every retry test injects a fake sleep — nothing
// here waits on wall-clock time.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/artifact_io.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/status.h"
#include "core/lsd_system.h"
#include "gtest/gtest.h"
#include "service/circuit_breaker.h"
#include "service/match_service.h"
#include "service/model_registry.h"
#include "xml/dtd_parser.h"
#include "xml/xml_parser.h"

namespace lsd {
namespace {

// ---------------------------------------------------------------------------
// CircuitBreaker state machine
// ---------------------------------------------------------------------------

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailuresOnly) {
  CircuitBreaker breaker(CircuitBreakerOptions{/*failure_threshold=*/3,
                                               /*open_skips=*/2});
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.RecordSuccess();  // streak broken
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.RecordFailure();  // third consecutive
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.open_transitions(), 1u);
}

TEST(CircuitBreakerTest, OpenServesSkipsThenProbesAndProbeSuccessCloses) {
  CircuitBreaker breaker(CircuitBreakerOptions{/*failure_threshold=*/1,
                                               /*open_skips=*/2});
  breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.NextDecision(), CircuitBreaker::Decision::kSkip);
  // Skip budget exhausted: the next request becomes the probe.
  EXPECT_EQ(breaker.NextDecision(), CircuitBreaker::Decision::kProbe);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  // Only one probe at a time; concurrent requests keep skipping.
  EXPECT_EQ(breaker.NextDecision(), CircuitBreaker::Decision::kSkip);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.NextDecision(), CircuitBreaker::Decision::kExecute);
}

TEST(CircuitBreakerTest, ProbeFailureReopensAndAbandonReleasesTheToken) {
  CircuitBreaker breaker(CircuitBreakerOptions{/*failure_threshold=*/1,
                                               /*open_skips=*/1});
  breaker.RecordFailure();
  ASSERT_EQ(breaker.NextDecision(), CircuitBreaker::Decision::kProbe);
  breaker.RecordFailure();  // probe failed
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.open_transitions(), 2u);
  // Fresh skip cycle, then a new probe whose request dies elsewhere:
  // abandoning must release the token so the next request can probe.
  ASSERT_EQ(breaker.NextDecision(), CircuitBreaker::Decision::kProbe);
  breaker.AbandonProbe();
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(breaker.NextDecision(), CircuitBreaker::Decision::kProbe);
}

TEST(CircuitBreakerTest, ThresholdZeroDisablesTheBreaker) {
  CircuitBreaker breaker(CircuitBreakerOptions{/*failure_threshold=*/0,
                                               /*open_skips=*/1});
  for (int i = 0; i < 10; ++i) breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.NextDecision(), CircuitBreaker::Decision::kExecute);
}

TEST(CircuitBreakerTest, BankCreatesLazilyAndSumsTransitions) {
  BreakerBank bank(CircuitBreakerOptions{/*failure_threshold=*/1,
                                         /*open_skips=*/1});
  EXPECT_EQ(bank.StateOf("naive-bayes"), BreakerState::kClosed);
  EXPECT_EQ(bank.TotalOpenTransitions(), 0u);
  bank.Get("naive-bayes")->RecordFailure();
  bank.Get("name-matcher")->RecordFailure();
  EXPECT_EQ(bank.StateOf("naive-bayes"), BreakerState::kOpen);
  EXPECT_EQ(bank.StateOf("name-matcher"), BreakerState::kOpen);
  EXPECT_EQ(bank.TotalOpenTransitions(), 2u);
}

// ---------------------------------------------------------------------------
// MatchService fixture: the robustness suite's real-estate micro-domain,
// with request payloads as raw text (the service parses them itself).
// ---------------------------------------------------------------------------

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mediated_ = ParseDtd(R"(
      <!ELEMENT HOUSE (ADDRESS, DESCRIPTION, CONTACT-INFO)>
      <!ELEMENT ADDRESS (#PCDATA)>
      <!ELEMENT DESCRIPTION (#PCDATA)>
      <!ELEMENT CONTACT-INFO (AGENT-NAME, AGENT-PHONE)>
      <!ELEMENT AGENT-NAME (#PCDATA)>
      <!ELEMENT AGENT-PHONE (#PCDATA)>
    )").value();

    source_a_ = MakeSource(
        "a.com",
        R"(<!ELEMENT house-listing (location, comments, contact)>
           <!ELEMENT location (#PCDATA)>
           <!ELEMENT comments (#PCDATA)>
           <!ELEMENT contact (name, phone)>
           <!ELEMENT name (#PCDATA)>
           <!ELEMENT phone (#PCDATA)>)",
        {"house-listing", "location", "comments", "contact", "name",
         "phone"});
    gold_a_.Set("house-listing", "HOUSE");
    gold_a_.Set("location", "ADDRESS");
    gold_a_.Set("comments", "DESCRIPTION");
    gold_a_.Set("contact", "CONTACT-INFO");
    gold_a_.Set("name", "AGENT-NAME");
    gold_a_.Set("phone", "AGENT-PHONE");
  }

  static DataSource MakeSource(const std::string& name,
                               const std::string& dtd_text,
                               const std::vector<std::string>& tags) {
    static const std::vector<std::string> kCities = {
        "Miami, FL", "Boston, MA", "Seattle, WA", "Austin, TX"};
    static const std::vector<std::string> kDescs = {
        "Fantastic house great location", "Beautiful home spacious yard",
        "Great views close to river", "Charming cottage near schools"};
    static const std::vector<std::string> kNames = {
        "Kate Richardson", "Mike Smith", "Jane Kendall", "Matt Brown"};
    DataSource source;
    source.name = name;
    source.schema = ParseDtd(dtd_text).value();
    for (size_t i = 0; i < 12; ++i) {
      std::string phone = "(555) 321 " + std::to_string(1000 + 7 * i);
      std::string xml =
          "<" + tags[0] + ">" + "<" + tags[1] + ">" + kCities[i % 4] + "</" +
          tags[1] + ">" + "<" + tags[2] + ">" + kDescs[i % 4] + "</" +
          tags[2] + ">" + "<" + tags[3] + ">" + "<" + tags[4] + ">" +
          kNames[i % 4] + "</" + tags[4] + ">" + "<" + tags[5] + ">" + phone +
          "</" + tags[5] + ">" + "</" + tags[3] + ">" + "</" + tags[0] + ">";
      source.listings.push_back(ParseXml(xml).value());
    }
    return source;
  }

  MatchService::ReplicaFactory Factory() {
    return [this]() -> StatusOr<std::unique_ptr<LsdSystem>> {
      auto system = std::make_unique<LsdSystem>(mediated_, LsdConfig());
      LSD_RETURN_IF_ERROR(system->AddTrainingSource(source_a_, gold_a_));
      LSD_RETURN_IF_ERROR(system->Train());
      return StatusOr<std::unique_ptr<LsdSystem>>(std::move(system));
    };
  }

  /// Factory for a deliberately different model: the text-field gold
  /// labels are swapped, so training converges to a model whose golden
  /// fingerprints cannot match the serving baseline.
  MatchService::ReplicaFactory DivergentFactory() {
    return [this]() -> StatusOr<std::unique_ptr<LsdSystem>> {
      Mapping inverted = gold_a_;
      inverted.Set("location", "DESCRIPTION");
      inverted.Set("comments", "ADDRESS");
      auto system = std::make_unique<LsdSystem>(mediated_, LsdConfig());
      LSD_RETURN_IF_ERROR(system->AddTrainingSource(source_a_, inverted));
      LSD_RETURN_IF_ERROR(system->Train());
      return StatusOr<std::unique_ptr<LsdSystem>>(std::move(system));
    };
  }

  /// FastOptions plus a two-request golden set, so Reload() actually
  /// shadow-validates.
  static MatchServiceOptions GoldenOptions() {
    MatchServiceOptions options = FastOptions();
    options.golden_requests.push_back(TargetRequest("golden-0", 0));
    options.golden_requests.push_back(TargetRequest("golden-1", 1));
    return options;
  }

  /// A healthy target request; the `variant` seeds distinct-but-fixed
  /// content so different ids carry different payloads deterministically.
  static ServiceRequest TargetRequest(const std::string& id,
                                      size_t variant = 0) {
    static const std::vector<std::string> kCities = {
        "Portland, OR", "Denver, CO", "Miami, FL", "Boston, MA"};
    ServiceRequest request;
    request.id = id;
    request.dtd_text =
        "<!ELEMENT home (area, extra-info, reach)>"
        "<!ELEMENT area (#PCDATA)>"
        "<!ELEMENT extra-info (#PCDATA)>"
        "<!ELEMENT reach (realtor, work-phone)>"
        "<!ELEMENT realtor (#PCDATA)>"
        "<!ELEMENT work-phone (#PCDATA)>";
    std::string xml = "<listings>";
    for (size_t i = 0; i < 4; ++i) {
      xml += "<home><area>" + kCities[(variant + i) % 4] +
             "</area><extra-info>Spacious home fantastic neighborhood"
             "</extra-info><reach><realtor>Jane Kendall</realtor>"
             "<work-phone>(555) 777 " + std::to_string(2000 + 13 * i) +
             "</work-phone></reach></home>";
    }
    xml += "</listings>";
    request.xml_text = std::move(xml);
    return request;
  }

  /// Options tuned for tests: single worker, no real sleeping.
  static MatchServiceOptions FastOptions() {
    MatchServiceOptions options;
    options.workers = 1;
    options.max_queue_depth = 8;
    options.breaker.failure_threshold = 0;  // off unless a test turns it on
    options.sleep_millis = [](int64_t) {};
    return options;
  }

  Dtd mediated_;
  DataSource source_a_;
  Mapping gold_a_;
};

/// A gate the tests hang on the execute interceptor to hold workers at a
/// deterministic point: the test learns when a worker arrived (Await) and
/// decides when it may proceed (Open).
class Gate {
 public:
  void Hold(const std::string& id) { hold_id_ = id; }

  void operator()(const ServiceRequest& request) {
    std::unique_lock<std::mutex> lock(mu_);
    if (request.id != hold_id_) return;
    ++arrived_;
    cv_.notify_all();
    cv_.wait(lock, [this] { return open_; });
  }

  void Await(size_t n = 1) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return arrived_ >= n; });
  }

  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::string hold_id_;
  size_t arrived_ = 0;
  bool open_ = false;
};

// ---------------------------------------------------------------------------
// Happy path and lifecycle
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, HealthyRequestMatchesCleanly) {
  auto service = MatchService::Create(Factory(), FastOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ServiceResponse response = (*service)->Process(TargetRequest("r1"));
  EXPECT_EQ(response.outcome, RequestOutcome::kOk);
  EXPECT_TRUE(response.status.ok());
  EXPECT_EQ(response.attempts, 1u);
  EXPECT_EQ(response.retries, 0u);
  EXPECT_FALSE(response.mapping.empty());
  EXPECT_NE(response.mapping.find("area <=> ADDRESS"), std::string::npos);
  MatchService::Stats stats = (*service)->stats();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.ok, 1u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST_F(ServiceTest, StoppedServiceShedsImmediately) {
  auto service = MatchService::Create(Factory(), FastOptions());
  ASSERT_TRUE(service.ok());
  (*service)->Stop();
  ServiceResponse response = (*service)->Process(TargetRequest("late"));
  EXPECT_EQ(response.outcome, RequestOutcome::kShed);
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ((*service)->stats().shed, 1u);
}

// ---------------------------------------------------------------------------
// Admission control and load shedding
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, QueueOverflowShedsWithUnavailableAndDrainsTheRest) {
  auto gate = std::make_shared<Gate>();
  gate->Hold("blocker");
  MatchServiceOptions options = FastOptions();
  options.max_queue_depth = 3;
  options.execute_interceptor = [gate](const ServiceRequest& r) {
    (*gate)(r);
  };
  auto service = MatchService::Create(Factory(), options);
  ASSERT_TRUE(service.ok());

  // Fill the service: one request held mid-execution, two queued.
  std::future<ServiceResponse> blocked =
      (*service)->Submit(TargetRequest("blocker"));
  gate->Await();
  std::future<ServiceResponse> q1 = (*service)->Submit(TargetRequest("q1"));
  std::future<ServiceResponse> q2 = (*service)->Submit(TargetRequest("q2"));

  // Depth limit reached (1 executing + 2 queued): the next one sheds
  // immediately — fail fast, no queueing, no execution.
  ServiceResponse shed = (*service)->Submit(TargetRequest("overflow")).get();
  EXPECT_EQ(shed.outcome, RequestOutcome::kShed);
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.status.message().find("queue full"), std::string::npos);
  EXPECT_EQ(shed.attempts, 0u);

  gate->Open();
  EXPECT_EQ(blocked.get().outcome, RequestOutcome::kOk);
  EXPECT_EQ(q1.get().outcome, RequestOutcome::kOk);
  EXPECT_EQ(q2.get().outcome, RequestOutcome::kOk);
  MatchService::Stats stats = (*service)->stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.ok, 3u);
}

TEST_F(ServiceTest, UnmeetableDeadlineIsShedAtAdmission) {
  auto gate = std::make_shared<Gate>();
  gate->Hold("blocker");  // only the blocker is held; warmup passes through
  MatchServiceOptions options = FastOptions();
  options.grace_ms = 0;  // no slack: any estimated wait kills a 0ms budget
  options.execute_interceptor = [gate](const ServiceRequest& r) {
    (*gate)(r);
  };
  auto service = MatchService::Create(Factory(), options);
  ASSERT_TRUE(service.ok());

  // Prime the execution-time estimate with one completed request, then
  // park a blocker mid-execution so later submissions see a wait.
  ASSERT_EQ((*service)->Process(TargetRequest("warmup")).outcome,
            RequestOutcome::kOk);
  std::future<ServiceResponse> blocked =
      (*service)->Submit(TargetRequest("blocker"));
  gate->Await();

  // A 0 ms budget cannot even cover the estimated queue wait behind the
  // blocker: admission fails fast instead of queueing doomed work.
  ServiceRequest doomed = TargetRequest("doomed");
  doomed.deadline_ms = 0;
  ServiceResponse shed = (*service)->Submit(std::move(doomed)).get();
  EXPECT_EQ(shed.outcome, RequestOutcome::kShed);
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.status.message().find("deadline unmeetable"),
            std::string::npos);

  gate->Open();
  EXPECT_EQ(blocked.get().outcome, RequestOutcome::kOk);
}

TEST_F(ServiceTest, ColdStartShedsBehindALongRunnerBeforeAnyCompletion) {
  // Before any request completes, the execution-time EWMA is unseeded;
  // admission falls back to the age of the oldest in-flight execution.
  // A zero-budget, zero-grace request stuck behind a held worker must be
  // shed even in that cold window — the old sentinel-based gate admitted
  // everything until the first completion.
  auto gate = std::make_shared<Gate>();
  gate->Hold("blocker");
  MatchServiceOptions options = FastOptions();
  options.grace_ms = 0;
  options.execute_interceptor = [gate](const ServiceRequest& r) {
    (*gate)(r);
  };
  auto service = MatchService::Create(Factory(), options);
  ASSERT_TRUE(service.ok());

  // No warmup: the first submission goes straight to the gate.
  std::future<ServiceResponse> blocked =
      (*service)->Submit(TargetRequest("blocker"));
  gate->Await();
  // Let the in-flight execution age measurably (the estimate only needs
  // any nonzero age; a couple of milliseconds keeps it robust).
  std::this_thread::sleep_for(std::chrono::milliseconds(2));

  ServiceRequest doomed = TargetRequest("doomed");
  doomed.deadline_ms = 0;
  ServiceResponse shed = (*service)->Submit(std::move(doomed)).get();
  EXPECT_EQ(shed.outcome, RequestOutcome::kShed);
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.status.message().find("deadline unmeetable"),
            std::string::npos);

  gate->Open();
  EXPECT_EQ(blocked.get().outcome, RequestOutcome::kOk);
}

TEST_F(ServiceTest, ColdStartAdmitsDeadlineRequestsOnAnIdleService) {
  // The other half of the cold-start contract: with nothing queued and
  // nothing executing, a cold service has no evidence of cost and must
  // admit even a zero-budget request (it degrades through the anytime
  // path rather than being shed).
  MatchServiceOptions options = FastOptions();
  options.grace_ms = 0;
  auto service = MatchService::Create(Factory(), options);
  ASSERT_TRUE(service.ok());
  ServiceRequest request = TargetRequest("expired-but-idle");
  request.deadline_ms = 0;
  ServiceResponse response = (*service)->Process(std::move(request));
  EXPECT_NE(response.outcome, RequestOutcome::kShed);
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
}

TEST_F(ServiceTest, AdmissionFaultSeamShedsTheMatchingRequest) {
  FaultInjector injector;
  injector.FailMatching(FaultSite::kServiceAdmit, "shed-me",
                        Status::Unavailable("injected admission refusal"));
  ScopedFaultInjection scoped(&injector);
  auto service = MatchService::Create(Factory(), FastOptions());
  ASSERT_TRUE(service.ok());
  ServiceResponse shed = (*service)->Process(TargetRequest("shed-me"));
  EXPECT_EQ(shed.outcome, RequestOutcome::kShed);
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  ServiceResponse ok = (*service)->Process(TargetRequest("other"));
  EXPECT_EQ(ok.outcome, RequestOutcome::kOk);
  EXPECT_GE(injector.injected_count(), 1u);
}

// ---------------------------------------------------------------------------
// Retries and failure taxonomy
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, TransientExecFaultIsRetriedAndSucceeds) {
  FaultInjector injector;
  // "/attempt-0" marks the fault transient: attempt 0 fails, attempt 1 is
  // a different key and passes.
  injector.FailMatching(FaultSite::kServiceExec, "/attempt-0",
                        Status::Internal("transient glitch"));
  ScopedFaultInjection scoped(&injector);
  std::vector<int64_t> slept;
  MatchServiceOptions options = FastOptions();
  options.sleep_millis = [&slept](int64_t ms) { slept.push_back(ms); };
  auto service = MatchService::Create(Factory(), options);
  ASSERT_TRUE(service.ok());
  ServiceResponse response = (*service)->Process(TargetRequest("r1"));
  EXPECT_EQ(response.outcome, RequestOutcome::kOk);
  EXPECT_EQ(response.attempts, 2u);
  EXPECT_EQ(response.retries, 1u);
  ASSERT_EQ(slept.size(), 1u);
  EXPECT_GT(slept[0], 0);
  EXPECT_LE(slept[0], options.backoff.initial_ms);
  EXPECT_EQ((*service)->stats().retried, 1u);
}

TEST_F(ServiceTest, PersistentExecFaultExhaustsRetriesAndFails) {
  FaultInjector injector;
  // Id-keyed rule: every attempt of r1 fails; other requests untouched.
  injector.FailMatching(FaultSite::kServiceExec, "r1/",
                        Status::Internal("persistent fault"));
  ScopedFaultInjection scoped(&injector);
  MatchServiceOptions options = FastOptions();
  options.backoff.max_retries = 2;
  auto service = MatchService::Create(Factory(), options);
  ASSERT_TRUE(service.ok());
  ServiceResponse failed = (*service)->Process(TargetRequest("r1"));
  EXPECT_EQ(failed.outcome, RequestOutcome::kFailed);
  EXPECT_EQ(failed.status.code(), StatusCode::kInternal);
  EXPECT_EQ(failed.attempts, 3u);  // 1 + 2 retries
  EXPECT_EQ(failed.retries, 2u);
  ServiceResponse ok = (*service)->Process(TargetRequest("r2"));
  EXPECT_EQ(ok.outcome, RequestOutcome::kOk);  // isolation: r2 unaffected
}

TEST_F(ServiceTest, HardErrorsAreNeverRetried) {
  FaultInjector injector;
  injector.FailMatching(FaultSite::kServiceExec, "r1/",
                        Status::InvalidArgument("contract violation"));
  ScopedFaultInjection scoped(&injector);
  MatchServiceOptions options = FastOptions();
  options.sleep_millis = [](int64_t) { FAIL() << "hard errors never sleep"; };
  auto service = MatchService::Create(Factory(), options);
  ASSERT_TRUE(service.ok());
  ServiceResponse response = (*service)->Process(TargetRequest("r1"));
  EXPECT_EQ(response.outcome, RequestOutcome::kFailed);
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(response.attempts, 1u);
  EXPECT_EQ(response.retries, 0u);
}

TEST_F(ServiceTest, StrictParseErrorIsRetryableLenientRecoversDegraded) {
  // A healthy payload with a torn tail: garbage after the root element.
  // Strict parsing rejects the document; lenient parsing recovers the good
  // listings and records the damage.
  ServiceRequest corrupt = TargetRequest("corrupt");
  corrupt.xml_text += "<home><area>Torn St";

  // Strict: a parse error is classified retryable (recoverable category),
  // retried on the same bytes, and fails with kParseError.
  MatchServiceOptions strict = FastOptions();
  strict.lenient_parse = false;
  strict.backoff.max_retries = 1;
  auto strict_service = MatchService::Create(Factory(), strict);
  ASSERT_TRUE(strict_service.ok());
  ServiceResponse failed = (*strict_service)->Process(corrupt);
  EXPECT_EQ(failed.outcome, RequestOutcome::kFailed);
  EXPECT_EQ(failed.status.code(), StatusCode::kParseError);
  EXPECT_EQ(failed.attempts, 2u);

  // Lenient (the default): recovery succeeds, the damage is recorded, and
  // the outcome is degraded — a mapping was still produced.
  auto lenient_service = MatchService::Create(Factory(), FastOptions());
  ASSERT_TRUE(lenient_service.ok());
  ServiceResponse degraded = (*lenient_service)->Process(corrupt);
  EXPECT_EQ(degraded.outcome, RequestOutcome::kDegraded);
  EXPECT_TRUE(degraded.status.ok());
  EXPECT_FALSE(degraded.mapping.empty());
  ASSERT_FALSE(degraded.report.notes.empty());
  EXPECT_NE(degraded.report.notes[0].find("lenient XML parse"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Per-learner circuit breaker through the service
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, BreakerOpensSkipsProbesAndRecoversByteIdentically) {
  MatchServiceOptions options = FastOptions();
  options.breaker.failure_threshold = 2;
  options.breaker.open_skips = 2;
  auto service = MatchService::Create(Factory(), options);
  ASSERT_TRUE(service.ok());

  std::string paid_fingerprint;
  {
    // A key-pure rule: naive-bayes fails every predict call.
    FaultInjector injector;
    injector.FailMatching(FaultSite::kLearnerPredict, kNaiveBayesName,
                          Status::Internal("learner keeps dying"));
    ScopedFaultInjection scoped(&injector);

    // Failures 1 and 2 pay full price: the learner runs, fails, and is
    // quarantined per-request (PR-2 path). The second failure trips the
    // breaker.
    ServiceResponse paid1 = (*service)->Process(TargetRequest("p1"));
    EXPECT_EQ(paid1.outcome, RequestOutcome::kDegraded);
    EXPECT_FALSE(paid1.breaker_skipped);
    EXPECT_TRUE(paid1.report.IsQuarantined(kNaiveBayesName));
    EXPECT_EQ((*service)->breaker_state(kNaiveBayesName),
              BreakerState::kClosed);
    ServiceResponse paid2 = (*service)->Process(TargetRequest("p2"));
    EXPECT_EQ((*service)->breaker_state(kNaiveBayesName), BreakerState::kOpen);
    paid_fingerprint = paid2.fingerprint;

    // Open: requests 3 and 4 skip the learner without paying for the
    // failure — and the mapping bytes are identical to the paid path,
    // because both reduce to the same survivor mask.
    ServiceResponse skipped = (*service)->Process(TargetRequest("p2"));
    EXPECT_EQ(skipped.outcome, RequestOutcome::kDegraded);
    EXPECT_TRUE(skipped.breaker_skipped);
    EXPECT_EQ(skipped.fingerprint, paid_fingerprint);
    EXPECT_TRUE(skipped.report.IsQuarantined(kNaiveBayesName));

    // Skip budget spent: the next request probes, the learner still fails,
    // and the breaker reopens.
    ServiceResponse probe = (*service)->Process(TargetRequest("p4"));
    EXPECT_FALSE(probe.breaker_skipped);
    EXPECT_EQ((*service)->breaker_state(kNaiveBayesName), BreakerState::kOpen);
    EXPECT_GE((*service)->stats().breaker_open_transitions, 2u);
  }

  // Fault gone: one more skip (the second decision of the open cycle
  // becomes the probe), then the recovery probe succeeds and the breaker
  // closes — full-strength matching resumes.
  ServiceResponse skip1 = (*service)->Process(TargetRequest("p5"));
  EXPECT_TRUE(skip1.breaker_skipped);
  ServiceResponse probe = (*service)->Process(TargetRequest("p6"));
  EXPECT_FALSE(probe.breaker_skipped);
  EXPECT_EQ(probe.outcome, RequestOutcome::kOk);
  EXPECT_EQ((*service)->breaker_state(kNaiveBayesName), BreakerState::kClosed);
  ServiceResponse healthy = (*service)->Process(TargetRequest("p7"));
  EXPECT_EQ(healthy.outcome, RequestOutcome::kOk);
  EXPECT_FALSE(healthy.breaker_skipped);
}

// ---------------------------------------------------------------------------
// Cross-request isolation
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, PoisonRequestsLeaveConcurrentHealthyOutputsByteIdentical) {
  // Solo baselines: each healthy request processed alone on a clean
  // single-worker service.
  std::vector<std::string> solo_fingerprints;
  {
    auto solo = MatchService::Create(Factory(), FastOptions());
    ASSERT_TRUE(solo.ok());
    for (size_t variant = 0; variant < 3; ++variant) {
      ServiceResponse response = (*solo)->Process(
          TargetRequest("healthy-" + std::to_string(variant), variant));
      ASSERT_EQ(response.outcome, RequestOutcome::kOk);
      solo_fingerprints.push_back(response.fingerprint);
    }
  }

  // Chaos run: the same healthy requests interleaved with a corrupt-XML
  // request and an injected-fault request, all in flight together on two
  // workers.
  FaultInjector injector;
  injector.FailMatching(FaultSite::kServiceExec, "poison/",
                        Status::Internal("injected execution fault"));
  ScopedFaultInjection scoped(&injector);
  MatchServiceOptions options = FastOptions();
  options.workers = 2;
  options.max_queue_depth = 16;
  options.backoff.max_retries = 1;
  auto service = MatchService::Create(Factory(), options);
  ASSERT_TRUE(service.ok());

  ServiceRequest corrupt = TargetRequest("corrupt");
  corrupt.xml_text += "<home><area>Torn St";
  std::vector<std::future<ServiceResponse>> futures;
  futures.push_back((*service)->Submit(TargetRequest("healthy-0", 0)));
  futures.push_back((*service)->Submit(std::move(corrupt)));
  futures.push_back((*service)->Submit(TargetRequest("healthy-1", 1)));
  futures.push_back((*service)->Submit(TargetRequest("poison")));
  futures.push_back((*service)->Submit(TargetRequest("healthy-2", 2)));

  ServiceResponse h0 = futures[0].get();
  ServiceResponse corrupted = futures[1].get();
  ServiceResponse h1 = futures[2].get();
  ServiceResponse poisoned = futures[3].get();
  ServiceResponse h2 = futures[4].get();

  // The poison requests fail in their own lanes...
  EXPECT_EQ(poisoned.outcome, RequestOutcome::kFailed);
  EXPECT_EQ(poisoned.status.code(), StatusCode::kInternal);
  // (corrupt recovers under lenient parse, but visibly degraded)
  EXPECT_EQ(corrupted.outcome, RequestOutcome::kDegraded);

  // ...and the healthy requests' outputs are byte-identical to their solo
  // runs: no cross-request contamination through shared state.
  EXPECT_EQ(h0.outcome, RequestOutcome::kOk);
  EXPECT_EQ(h1.outcome, RequestOutcome::kOk);
  EXPECT_EQ(h2.outcome, RequestOutcome::kOk);
  EXPECT_EQ(h0.fingerprint, solo_fingerprints[0]);
  EXPECT_EQ(h1.fingerprint, solo_fingerprints[1]);
  EXPECT_EQ(h2.fingerprint, solo_fingerprints[2]);
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, ExpiredDeadlineDegradesToAnytimeResultNotFailure) {
  MatchServiceOptions options = FastOptions();
  options.grace_ms = 60000;  // generous: the anytime path must finish inside
  auto service = MatchService::Create(Factory(), options);
  ASSERT_TRUE(service.ok());
  ServiceRequest request = TargetRequest("rushed");
  request.deadline_ms = 0;  // already expired at submit
  ServiceResponse response = (*service)->Process(std::move(request));
  EXPECT_EQ(response.outcome, RequestOutcome::kDegraded);
  EXPECT_TRUE(response.status.ok());
  EXPECT_FALSE(response.mapping.empty());
  EXPECT_TRUE(response.report.deadline_hit);
  EXPECT_FALSE(response.deadline_overrun);
}

// ---------------------------------------------------------------------------
// Hot model reload, shadow validation, probation, and rollback
// ---------------------------------------------------------------------------

/// Histogram observation count by name from a global-metrics snapshot.
uint64_t HistogramCountOf(const MetricsSnapshot& snapshot,
                          const std::string& name) {
  for (const MetricsSnapshot::HistogramValue& h : snapshot.histograms) {
    if (h.name == name) return h.count;
  }
  return 0;
}

TEST_F(ServiceTest, ReloadSwapsIdenticalModelWithoutDisturbingOutputs) {
  auto service = MatchService::Create(Factory(), GoldenOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_EQ((*service)->model_version(), 1u);

  ServiceResponse before = (*service)->Process(TargetRequest("r1"));
  ASSERT_EQ(before.outcome, RequestOutcome::kOk);
  EXPECT_EQ(before.model_version, 1u);

  MatchService::ReloadOptions reload;
  reload.factory = Factory();
  StatusOr<MatchService::ReloadReport> report =
      (*service)->Reload(std::move(reload));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->swapped);
  EXPECT_EQ(report->model_version, 2u);
  EXPECT_EQ(report->golden_total, 2u);
  EXPECT_EQ(report->golden_matched, 2u);
  EXPECT_EQ((*service)->model_version(), 2u);

  // The same request after the swap: attributed to the new version, byte-
  // identical bytes (the reload factory retrains the same model).
  uint64_t hits_before = (*service)->stats().pred_cache_hits;
  ServiceResponse after = (*service)->Process(TargetRequest("r1"));
  ASSERT_EQ(after.outcome, RequestOutcome::kOk);
  EXPECT_EQ(after.model_version, 2u);
  EXPECT_EQ(after.fingerprint, before.fingerprint);
  // The shared prediction cache needed no flush: the identically trained
  // replica's content-addressed keys line up with the warm entries.
  EXPECT_GT((*service)->stats().pred_cache_hits, hits_before);

  MatchService::Stats stats = (*service)->stats();
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(stats.reload_rejections, 0u);
  EXPECT_EQ(stats.rollbacks, 0u);
  EXPECT_EQ(stats.model_version, 2u);
}

TEST_F(ServiceTest, ShadowValidationRejectsDivergentCandidate) {
  auto service = MatchService::Create(Factory(), GoldenOptions());
  ASSERT_TRUE(service.ok());
  ServiceResponse before = (*service)->Process(TargetRequest("r1"));
  ASSERT_EQ(before.outcome, RequestOutcome::kOk);

  MatchService::ReloadOptions reload;
  reload.factory = DivergentFactory();
  StatusOr<MatchService::ReloadReport> report =
      (*service)->Reload(std::move(reload));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->swapped);
  EXPECT_FALSE(report->rejection.empty());
  EXPECT_LT(report->golden_matched, report->golden_total);

  // Serving is untouched: same version, same bytes.
  EXPECT_EQ((*service)->model_version(), 1u);
  ServiceResponse after = (*service)->Process(TargetRequest("r1"));
  EXPECT_EQ(after.model_version, 1u);
  EXPECT_EQ(after.fingerprint, before.fingerprint);
  MatchService::Stats stats = (*service)->stats();
  EXPECT_EQ(stats.reloads, 0u);
  EXPECT_EQ(stats.reload_rejections, 1u);
}

TEST_F(ServiceTest, AccuracyFloorAdmitsIntentionallyRetrainedModel) {
  auto service = MatchService::Create(Factory(), GoldenOptions());
  ASSERT_TRUE(service.ok());

  // The same candidate the byte-identical gate rejects is admissible
  // under an explicit accuracy floor of 0 — the operator's escape hatch
  // for an intentional retrain that changes outputs.
  MatchService::ReloadOptions reload;
  reload.factory = DivergentFactory();
  reload.require_identical = false;
  reload.min_accuracy = 0.0;
  StatusOr<MatchService::ReloadReport> report =
      (*service)->Reload(std::move(reload));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->swapped);
  EXPECT_EQ((*service)->model_version(), 2u);
  ServiceResponse response = (*service)->Process(TargetRequest("r1"));
  EXPECT_EQ(response.model_version, 2u);
  EXPECT_NE(response.outcome, RequestOutcome::kShed);
}

TEST_F(ServiceTest, SwapFaultSeamAbortsReloadLeavingServingUntouched) {
  FaultInjector injector;
  injector.FailMatching(FaultSite::kModelSwap, "swap/",
                        Status::Internal("injected publication fault"));
  ScopedFaultInjection scoped(&injector);
  auto service = MatchService::Create(Factory(), GoldenOptions());
  ASSERT_TRUE(service.ok());

  MatchService::ReloadOptions reload;
  reload.factory = Factory();
  StatusOr<MatchService::ReloadReport> report =
      (*service)->Reload(std::move(reload));
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
  EXPECT_GE(injector.injected_count(), 1u);

  // Not a rejection, not a swap: serving traffic continues on version 1.
  EXPECT_EQ((*service)->model_version(), 1u);
  ServiceResponse response = (*service)->Process(TargetRequest("r1"));
  EXPECT_EQ(response.outcome, RequestOutcome::kOk);
  EXPECT_EQ(response.model_version, 1u);
  MatchService::Stats stats = (*service)->stats();
  EXPECT_EQ(stats.reloads, 0u);
  EXPECT_EQ(stats.reload_rejections, 0u);
}

TEST_F(ServiceTest, ProbationBreachRollsBackToLastGoodAutomatically) {
  MatchServiceOptions options = GoldenOptions();
  options.backoff.max_retries = 0;
  auto service = MatchService::Create(Factory(), options);
  ASSERT_TRUE(service.ok());
  ServiceResponse baseline = (*service)->Process(TargetRequest("r1"));
  ASSERT_EQ(baseline.outcome, RequestOutcome::kOk);

  MatchService::ReloadOptions reload;
  reload.factory = Factory();
  reload.probation_requests = 8;
  reload.probation_max_failures = 1;
  StatusOr<MatchService::ReloadReport> report =
      (*service)->Reload(std::move(reload));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->swapped);
  ASSERT_EQ(report->model_version, 2u);

  // While the swap is on probation, another reload is refused — the
  // rollback target must stay the immediately previous generation.
  MatchService::ReloadOptions second;
  second.factory = Factory();
  StatusOr<MatchService::ReloadReport> refused =
      (*service)->Reload(std::move(second));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  // Two injected hard failures against the new version: the first is
  // within the threshold, the second breaches it and triggers rollback.
  {
    FaultInjector injector;
    injector.FailMatching(FaultSite::kServiceExec, "bad-1/",
                          Status::Internal("post-swap regression"));
    injector.FailMatching(FaultSite::kServiceExec, "bad-2/",
                          Status::Internal("post-swap regression"));
    ScopedFaultInjection scoped(&injector);
    ServiceResponse bad1 = (*service)->Process(TargetRequest("bad-1"));
    EXPECT_EQ(bad1.outcome, RequestOutcome::kFailed);
    EXPECT_EQ(bad1.model_version, 2u);
    EXPECT_EQ((*service)->stats().rollbacks, 0u);
    ServiceResponse bad2 = (*service)->Process(TargetRequest("bad-2"));
    EXPECT_EQ(bad2.outcome, RequestOutcome::kFailed);
    EXPECT_EQ(bad2.model_version, 2u);
  }

  // Rolled back: the previous generation serves again under a fresh
  // epoch, and its outputs are byte-identical to the pre-swap baseline.
  MatchService::Stats stats = (*service)->stats();
  EXPECT_EQ(stats.rollbacks, 1u);
  EXPECT_EQ(stats.model_version, 3u);
  ServiceResponse restored = (*service)->Process(TargetRequest("r1"));
  EXPECT_EQ(restored.outcome, RequestOutcome::kOk);
  EXPECT_EQ(restored.model_version, 3u);
  EXPECT_EQ(restored.fingerprint, baseline.fingerprint);

  // Probation is over: a new reload is admissible again.
  MatchService::ReloadOptions third;
  third.factory = Factory();
  StatusOr<MatchService::ReloadReport> again =
      (*service)->Reload(std::move(third));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(again->swapped);
}

TEST_F(ServiceTest, ProbationPassPromotesTheNewVersion) {
  auto service = MatchService::Create(Factory(), GoldenOptions());
  ASSERT_TRUE(service.ok());
  MatchService::ReloadOptions reload;
  reload.factory = Factory();
  reload.probation_requests = 2;
  reload.probation_max_failures = 0;
  StatusOr<MatchService::ReloadReport> report =
      (*service)->Reload(std::move(reload));
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->swapped);

  EXPECT_EQ((*service)->Process(TargetRequest("p1")).model_version, 2u);
  EXPECT_EQ((*service)->Process(TargetRequest("p2")).model_version, 2u);
  // Probation cleared without a rollback; the next reload proceeds.
  EXPECT_EQ((*service)->stats().rollbacks, 0u);
  MatchService::ReloadOptions next;
  next.factory = Factory();
  StatusOr<MatchService::ReloadReport> after =
      (*service)->Reload(std::move(next));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(after->swapped);
  EXPECT_EQ((*service)->model_version(), 3u);
}

TEST_F(ServiceTest, RegistryRecordsServingLastGoodAndQuarantine) {
  // The registry only needs structurally valid "model" bytes; the service
  // never loads them (the reload factory is the loader).
  std::string dir = ::testing::TempDir() + "/lsd_service_registry_test";
  std::remove((dir + "/registry.manifest").c_str());
  for (int id = 1; id <= 8; ++id) {
    std::remove((dir + "/v" + std::to_string(id) + ".model").c_str());
  }
  std::string fake = ::testing::TempDir() + "/lsd_service_fake.model";
  Artifact artifact;
  artifact.kind = "model";
  artifact.sections.push_back({"state", "stand-in model bytes"});
  ASSERT_TRUE(WriteArtifact(fake, artifact).ok());

  ModelRegistry registry(dir);
  ASSERT_TRUE(registry.Open().ok());
  StatusOr<uint64_t> v1 = registry.AddVersion(fake);
  StatusOr<uint64_t> v2 = registry.AddVersion(fake);
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());

  MatchServiceOptions options = GoldenOptions();
  options.backoff.max_retries = 0;
  options.registry = &registry;
  auto service = MatchService::Create(Factory(), options);
  ASSERT_TRUE(service.ok());

  // Adopted with a one-request probation: serving immediately, last-good
  // only after the probation request clears.
  MatchService::ReloadOptions reload;
  reload.factory = Factory();
  reload.registry_version = *v1;
  reload.probation_requests = 1;
  StatusOr<MatchService::ReloadReport> adopted =
      (*service)->Reload(std::move(reload));
  ASSERT_TRUE(adopted.ok()) << adopted.status().ToString();
  ASSERT_TRUE(adopted->swapped);
  EXPECT_EQ(registry.serving(), *v1);
  EXPECT_EQ(registry.last_good(), 0u);
  ASSERT_EQ((*service)->Process(TargetRequest("ok")).outcome,
            RequestOutcome::kOk);
  EXPECT_EQ(registry.last_good(), *v1);

  // A shadow-validation rejection quarantines its registry version.
  MatchService::ReloadOptions rejected;
  rejected.factory = DivergentFactory();
  rejected.registry_version = *v2;
  StatusOr<MatchService::ReloadReport> rejection =
      (*service)->Reload(std::move(rejected));
  ASSERT_TRUE(rejection.ok());
  EXPECT_FALSE(rejection->swapped);
  EXPECT_EQ(registry.Get(*v2)->status, ModelVersionStatus::kQuarantined);
  EXPECT_EQ(registry.serving(), *v1);

  // A probation breach quarantines the regressed version and restores
  // the previous one as serving.
  StatusOr<uint64_t> v3 = registry.AddVersion(fake);
  ASSERT_TRUE(v3.ok());
  MatchService::ReloadOptions regressed;
  regressed.factory = Factory();
  regressed.registry_version = *v3;
  regressed.probation_requests = 4;
  regressed.probation_max_failures = 0;
  StatusOr<MatchService::ReloadReport> swapped =
      (*service)->Reload(std::move(regressed));
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  ASSERT_TRUE(swapped->swapped);
  EXPECT_EQ(registry.serving(), *v3);
  {
    FaultInjector injector;
    injector.FailMatching(FaultSite::kServiceExec, "regress/",
                          Status::Internal("post-swap regression"));
    ScopedFaultInjection scoped(&injector);
    EXPECT_EQ((*service)->Process(TargetRequest("regress")).outcome,
              RequestOutcome::kFailed);
  }
  EXPECT_EQ((*service)->stats().rollbacks, 1u);
  EXPECT_EQ(registry.Get(*v3)->status, ModelVersionStatus::kQuarantined);
  EXPECT_EQ(registry.serving(), *v1);
  EXPECT_EQ(registry.last_good(), *v1);
  std::remove(fake.c_str());
}

TEST_F(ServiceTest, ShedResponsesCarryLatencyAndFeedTheShedHistogram) {
  uint64_t before = HistogramCountOf(MetricsRegistry::Global().Snapshot(),
                                     "service.shed_micros");
  auto service = MatchService::Create(Factory(), FastOptions());
  ASSERT_TRUE(service.ok());
  (*service)->Stop();
  ServiceResponse shed = (*service)->Process(TargetRequest("late"));
  ASSERT_EQ(shed.outcome, RequestOutcome::kShed);
  // Shed responses are part of the operator's latency story: the decision
  // time is on the response and in its own histogram, separate from
  // service.request_micros (which only sees executed requests).
  uint64_t after = HistogramCountOf(MetricsRegistry::Global().Snapshot(),
                                    "service.shed_micros");
  EXPECT_EQ(after, before + 1);
}

TEST_F(ServiceTest, ConcurrentSubmitAndStopAlwaysResolveEveryFuture) {
  // Submissions racing a concurrent Stop() from several threads: every
  // future must resolve — either executed before the drain or shed — and
  // none may hang. Run under TSan by scripts/check.sh.
  auto service = MatchService::Create(Factory(), FastOptions());
  ASSERT_TRUE(service.ok());

  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 8;
  std::vector<std::future<ServiceResponse>> futures[kThreads];
  std::vector<std::thread> submitters;
  std::atomic<size_t> started{0};
  for (size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      started.fetch_add(1);
      for (size_t i = 0; i < kPerThread; ++i) {
        futures[t].push_back((*service)->Submit(TargetRequest(
            "race-" + std::to_string(t) + "-" + std::to_string(i), i)));
      }
    });
  }
  while (started.load() < kThreads) std::this_thread::yield();
  (*service)->Stop();
  for (std::thread& thread : submitters) thread.join();

  size_t resolved = 0;
  for (size_t t = 0; t < kThreads; ++t) {
    for (std::future<ServiceResponse>& future : futures[t]) {
      ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
                std::future_status::ready)
          << "a submission racing Stop() never resolved its future";
      ServiceResponse response = future.get();
      ++resolved;
      // Anything admitted before the drain finished normally; everything
      // else shed with kUnavailable. Nothing else is acceptable.
      if (response.outcome == RequestOutcome::kShed) {
        EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
      } else {
        EXPECT_NE(response.outcome, RequestOutcome::kFailed)
            << response.status.ToString();
      }
    }
  }
  EXPECT_EQ(resolved, kThreads * kPerThread);
}

}  // namespace
}  // namespace lsd
