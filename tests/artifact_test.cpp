// Unit tests for the crash-safe artifact layer (common/artifact_io.h) and
// the training checkpoint store (core/checkpoint.h):
//   - atomic writes that leave the destination untouched under injected
//     write/sync/rename faults,
//   - the framed encode/decode round trip and its corruption taxonomy
//     (bad magic, version skew, truncation, bit flips, kind mismatch),
//   - injected write-corruption rules (torn writes the loader must catch),
//   - checkpoint manifest adoption, fingerprint gating, and fold/learner
//     round trips.
#include <sys/stat.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/artifact_io.h"
#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/status.h"
#include "core/checkpoint.h"
#include "gtest/gtest.h"
#include "ml/prediction.h"

namespace lsd {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/lsd_artifact_test_" + name;
}

Artifact SampleArtifact() {
  Artifact a;
  a.kind = "sample";
  // Binary-safe payloads: embedded newlines, NULs, and header-lookalikes
  // must survive framing untouched.
  a.sections.push_back({"alpha", std::string("line one\nline two\n")});
  a.sections.push_back({"binary", std::string("\x00\x01\xff---\ns x 0 0\n", 16)});
  a.sections.push_back({"empty", std::string()});
  return a;
}

TEST(Crc32Test, KnownVector) {
  // The CRC-32 check value from the IEEE 802.3 specification.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(ArtifactCodecTest, RoundTripPreservesKindOrderAndBytes) {
  Artifact original = SampleArtifact();
  std::string encoded = EncodeArtifact(original);

  StatusOr<Artifact> decoded = DecodeArtifact(encoded, "sample");
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->kind, "sample");
  ASSERT_EQ(decoded->sections.size(), original.sections.size());
  for (size_t i = 0; i < original.sections.size(); ++i) {
    EXPECT_EQ(decoded->sections[i].name, original.sections[i].name);
    EXPECT_EQ(decoded->sections[i].payload, original.sections[i].payload);
  }
  EXPECT_NE(decoded->Find("binary"), nullptr);
  EXPECT_EQ(decoded->Find("missing"), nullptr);
}

TEST(ArtifactCodecTest, KindMismatchIsInvalidArgument) {
  std::string encoded = EncodeArtifact(SampleArtifact());
  StatusOr<Artifact> decoded = DecodeArtifact(encoded, "model");
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ArtifactCodecTest, BadMagicIsParseError) {
  StatusOr<Artifact> decoded = DecodeArtifact("not an artifact at all\n");
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);

  // A legacy model file must classify as "not an artifact", not crash.
  decoded = DecodeArtifact("lsd-model 1\nlabels 0\n");
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);

  decoded = DecodeArtifact("");
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
}

TEST(ArtifactCodecTest, VersionSkewIsFailedPrecondition) {
  std::string encoded = EncodeArtifact(SampleArtifact());
  size_t pos = encoded.find(" 1 ");
  ASSERT_NE(pos, std::string::npos);
  encoded.replace(pos, 3, " 2 ");
  StatusOr<Artifact> decoded = DecodeArtifact(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ArtifactCodecTest, TruncationIsOutOfRange) {
  std::string encoded = EncodeArtifact(SampleArtifact());
  // Cut inside the payload region: the section table promises more bytes
  // than remain.
  StatusOr<Artifact> decoded = DecodeArtifact(
      std::string_view(encoded).substr(0, encoded.size() - 5));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kOutOfRange);

  // Cut inside the section table (before the --- separator).
  size_t sep = encoded.find("---\n");
  ASSERT_NE(sep, std::string::npos);
  decoded = DecodeArtifact(std::string_view(encoded).substr(0, sep - 2));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kOutOfRange);
}

TEST(ArtifactCodecTest, PayloadBitFlipIsDataLoss) {
  std::string encoded = EncodeArtifact(SampleArtifact());
  size_t sep = encoded.find("---\n");
  ASSERT_NE(sep, std::string::npos);
  std::string flipped = encoded;
  flipped[sep + 4] ^= 0x10;  // first payload byte
  StatusOr<Artifact> decoded = DecodeArtifact(flipped);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(ArtifactCodecTest, EveryPossibleBitFlipIsClassifiedNeverAccepted) {
  // Exhaustive single-bit-flip sweep: no flip anywhere in the file may
  // decode successfully with different contents, and every flip must map
  // to one of the documented taxonomy codes (never Internal, never UB).
  Artifact original = SampleArtifact();
  std::string encoded = EncodeArtifact(original);
  for (size_t byte = 0; byte < encoded.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = encoded;
      damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
      StatusOr<Artifact> decoded = DecodeArtifact(damaged, "sample");
      if (decoded.ok()) {
        // A flip inside a payload that still decodes would be silent
        // corruption; the CRCs make this impossible.
        ADD_FAILURE() << "bit flip at byte " << byte << " bit " << bit
                      << " decoded successfully";
        continue;
      }
      StatusCode code = decoded.status().code();
      EXPECT_TRUE(code == StatusCode::kParseError ||
                  code == StatusCode::kFailedPrecondition ||
                  code == StatusCode::kOutOfRange ||
                  code == StatusCode::kDataLoss ||
                  code == StatusCode::kInvalidArgument)
          << "byte " << byte << " bit " << bit << ": "
          << decoded.status().ToString();
    }
  }
}

TEST(ArtifactCodecTest, EveryTruncationPointIsClassified) {
  std::string encoded = EncodeArtifact(SampleArtifact());
  for (size_t keep = 0; keep < encoded.size(); ++keep) {
    StatusOr<Artifact> decoded =
        DecodeArtifact(std::string_view(encoded).substr(0, keep), "sample");
    ASSERT_FALSE(decoded.ok()) << "prefix of " << keep << " bytes decoded";
    StatusCode code = decoded.status().code();
    EXPECT_TRUE(code == StatusCode::kParseError ||
                code == StatusCode::kOutOfRange ||
                code == StatusCode::kDataLoss)
        << "prefix " << keep << ": " << decoded.status().ToString();
  }
}

TEST(AtomicWriteTest, WritesAndReplacesDurably) {
  std::string path = TestPath("atomic.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "first generation").ok());
  StatusOr<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "first generation");

  ASSERT_TRUE(WriteFileAtomic(path, "second generation").ok());
  read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "second generation");
  std::remove(path.c_str());
}

TEST(AtomicWriteTest, FaultedWriteLeavesDestinationUntouched) {
  // The mid-write-failure regression: a fault at any seam of the atomic
  // writer (open/write, fsync, publish rename) must leave the previous
  // contents byte-identical and leave no temp litter at the final path.
  for (FaultSite site :
       {FaultSite::kFileWrite, FaultSite::kFileSync, FaultSite::kFileRename}) {
    std::string path = TestPath(std::string("faulted_") + FaultSiteName(site));
    ASSERT_TRUE(WriteFileAtomic(path, "precious old bytes").ok());

    FaultInjector injector(7);
    injector.FailMatching(site, path, Status::Internal("injected"));
    {
      ScopedFaultInjection scope(&injector);
      Status failed = WriteFileAtomic(path, "new bytes that must not land");
      EXPECT_FALSE(failed.ok()) << FaultSiteName(site);
    }
    EXPECT_GE(injector.injected_count(), 1u) << FaultSiteName(site);

    StatusOr<std::string> read = ReadFileToString(path);
    ASSERT_TRUE(read.ok()) << FaultSiteName(site);
    EXPECT_EQ(*read, "precious old bytes") << FaultSiteName(site);
    std::remove(path.c_str());
  }
}

TEST(AtomicWriteTest, FaultedFirstWriteLeavesNoFile) {
  std::string path = TestPath("never_created.txt");
  std::remove(path.c_str());
  FaultInjector injector(7);
  injector.FailMatching(FaultSite::kFileSync, path, Status::Internal("inj"));
  {
    ScopedFaultInjection scope(&injector);
    EXPECT_FALSE(WriteFileAtomic(path, "doomed").ok());
  }
  EXPECT_FALSE(FileExists(path));
}

TEST(AtomicWriteTest, CorruptionRulesDamageBytesButReportSuccess) {
  // A torn write simulated via corruption rules: the writer reports OK but
  // the persisted artifact must fail validation with the right taxonomy.
  Artifact artifact = SampleArtifact();

  std::string truncated = TestPath("torn_truncate.artifact");
  {
    FaultInjector injector(11);
    injector.CorruptMatching(truncated, WriteCorruption::kTruncate, 99);
    ScopedFaultInjection scope(&injector);
    ASSERT_TRUE(WriteArtifact(truncated, artifact).ok());
  }
  StatusOr<Artifact> decoded = ReadArtifact(truncated, "sample");
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().code() == StatusCode::kOutOfRange ||
              decoded.status().code() == StatusCode::kParseError ||
              decoded.status().code() == StatusCode::kDataLoss)
      << decoded.status().ToString();
  std::remove(truncated.c_str());

  std::string flipped = TestPath("torn_bitflip.artifact");
  {
    FaultInjector injector(11);
    injector.CorruptMatching(flipped, WriteCorruption::kBitFlip, 99);
    ScopedFaultInjection scope(&injector);
    ASSERT_TRUE(WriteArtifact(flipped, artifact).ok());
  }
  decoded = ReadArtifact(flipped, "sample");
  ASSERT_FALSE(decoded.ok());
  std::remove(flipped.c_str());
}

TEST(AtomicWriteTest, CorruptionIsDeterministicAcrossRuns) {
  Artifact artifact = SampleArtifact();
  std::string a = TestPath("det_a.artifact");
  std::string b = TestPath("det_b.artifact");
  for (const std::string& path : {a, b}) {
    FaultInjector injector(3);
    injector.CorruptMatching("det_", WriteCorruption::kBitFlip, 17);
    ScopedFaultInjection scope(&injector);
    ASSERT_TRUE(WriteArtifact(path, artifact).ok());
  }
  // Same rule + same payload, but distinct keys: each file's damage is a
  // pure function of (seed, key, size), so rewriting the same path twice
  // produces identical bytes.
  std::string again = TestPath("det_a.artifact");
  {
    FaultInjector injector(3);
    injector.CorruptMatching("det_", WriteCorruption::kBitFlip, 17);
    ScopedFaultInjection scope(&injector);
    ASSERT_TRUE(WriteArtifact(again, artifact).ok());
  }
  StatusOr<std::string> first = ReadFileToString(a);
  StatusOr<std::string> second = ReadFileToString(again);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(*first, *second);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(ReadFileTest, ByteCapIsOutOfRange) {
  std::string path = TestPath("cap.txt");
  ASSERT_TRUE(WriteFileAtomic(path, std::string(1024, 'x')).ok());
  StatusOr<std::string> capped = ReadFileToString(path, 512);
  ASSERT_FALSE(capped.ok());
  EXPECT_EQ(capped.status().code(), StatusCode::kOutOfRange);
  StatusOr<std::string> fits = ReadFileToString(path, 1024);
  EXPECT_TRUE(fits.ok());
  std::remove(path.c_str());
}

TEST(ReadArtifactTest, MissingFileIsNotFound) {
  StatusOr<Artifact> decoded = ReadArtifact(TestPath("no_such.artifact"));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kNotFound);
}

// --- CheckpointManager ------------------------------------------------------

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/lsd_ckpt_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    // Start from an empty directory regardless of prior runs.
    std::string manifest = dir_ + "/manifest.lsdckpt";
    std::remove(manifest.c_str());
  }

  FoldPredictions MakeFold() {
    FoldPredictions preds;
    Prediction p;
    p.scores = {0.125, 0.5, 0.375};
    preds.emplace_back(3, p);
    p.scores = {1.0, 0.0, 0.0};
    preds.emplace_back(7, p);
    return preds;
  }

  std::string dir_;
};

TEST_F(CheckpointTest, FoldRoundTrip) {
  CheckpointManager store(dir_);
  ASSERT_TRUE(store.Open(0xfeedfaceu, false).ok());
  FoldPredictions saved = MakeFold();
  store.SaveFold("naive-bayes", 2, saved);
  EXPECT_TRUE(store.IsDone("fold/naive-bayes/2"));
  EXPECT_EQ(store.save_failures(), 0u);

  // A second manager resuming the same fingerprint restores the fold
  // bit-exactly (%.17g round-trips doubles).
  CheckpointManager resumed(dir_);
  ASSERT_TRUE(resumed.Open(0xfeedfaceu, true).ok());
  FoldPredictions loaded;
  ASSERT_TRUE(resumed.LoadFold("naive-bayes", 2, &loaded));
  ASSERT_EQ(loaded.size(), saved.size());
  for (size_t i = 0; i < saved.size(); ++i) {
    EXPECT_EQ(loaded[i].first, saved[i].first);
    EXPECT_EQ(loaded[i].second.scores, saved[i].second.scores);
  }
  EXPECT_EQ(resumed.restored(), 1u);
  EXPECT_FALSE(resumed.LoadFold("naive-bayes", 3, &loaded));
}

TEST_F(CheckpointTest, LearnerRoundTrip) {
  CheckpointManager store(dir_);
  ASSERT_TRUE(store.Open(1, false).ok());
  std::vector<Prediction> cv(2);
  cv[0].scores = {0.25, 0.75};
  cv[1].scores = {0.625, 0.375};
  store.SaveLearner("name-matcher", "serialized model\nbytes\n", cv);

  CheckpointManager resumed(dir_);
  ASSERT_TRUE(resumed.Open(1, true).ok());
  std::string model;
  std::vector<Prediction> restored;
  ASSERT_TRUE(resumed.LoadLearner("name-matcher", &model, &restored));
  EXPECT_EQ(model, "serialized model\nbytes\n");
  ASSERT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored[0].scores, cv[0].scores);
  EXPECT_EQ(restored[1].scores, cv[1].scores);
}

TEST_F(CheckpointTest, FingerprintMismatchIgnoresPriorRun) {
  CheckpointManager store(dir_);
  ASSERT_TRUE(store.Open(100, false).ok());
  store.SaveFold("naive-bayes", 0, MakeFold());

  // A different training problem must not adopt the old run's work.
  CheckpointManager other(dir_);
  ASSERT_TRUE(other.Open(200, true).ok());
  EXPECT_FALSE(other.IsDone("fold/naive-bayes/0"));
  FoldPredictions loaded;
  EXPECT_FALSE(other.LoadFold("naive-bayes", 0, &loaded));
}

TEST_F(CheckpointTest, ResumeFalseStartsFresh) {
  CheckpointManager store(dir_);
  ASSERT_TRUE(store.Open(5, false).ok());
  store.SaveFold("naive-bayes", 0, MakeFold());

  CheckpointManager fresh(dir_);
  ASSERT_TRUE(fresh.Open(5, false).ok());
  EXPECT_FALSE(fresh.IsDone("fold/naive-bayes/0"));
}

TEST_F(CheckpointTest, CorruptManifestStartsFreshNotUB) {
  CheckpointManager store(dir_);
  ASSERT_TRUE(store.Open(9, false).ok());
  store.SaveFold("naive-bayes", 1, MakeFold());

  // Truncate the manifest mid-file: resume must classify and start empty.
  StatusOr<std::string> bytes = ReadFileToString(store.ManifestPath());
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(
      WriteFileAtomic(store.ManifestPath(), bytes->substr(0, bytes->size() / 2))
          .ok());

  CheckpointManager resumed(dir_);
  ASSERT_TRUE(resumed.Open(9, true).ok());
  EXPECT_FALSE(resumed.IsDone("fold/naive-bayes/1"));
}

TEST_F(CheckpointTest, CorruptFoldFileIsSkippedNotRestored) {
  CheckpointManager store(dir_);
  ASSERT_TRUE(store.Open(13, false).ok());
  store.SaveFold("naive-bayes", 0, MakeFold());

  // Flip a payload bit in the fold file; the manifest still says done, but
  // the strict loader must reject it so the fold is recomputed.
  std::string fold_path = dir_ + "/fold-naive-bayes-0.lsdckpt";
  StatusOr<std::string> bytes = ReadFileToString(fold_path);
  ASSERT_TRUE(bytes.ok());
  std::string damaged = *bytes;
  damaged[damaged.size() - 3] ^= 0x40;
  ASSERT_TRUE(WriteFileAtomic(fold_path, damaged).ok());

  CheckpointManager resumed(dir_);
  ASSERT_TRUE(resumed.Open(13, true).ok());
  EXPECT_TRUE(resumed.IsDone("fold/naive-bayes/0"));
  FoldPredictions loaded;
  EXPECT_FALSE(resumed.LoadFold("naive-bayes", 0, &loaded));
  EXPECT_EQ(resumed.restored(), 0u);
}

TEST_F(CheckpointTest, SaveFailureIsAbsorbedAndCounted) {
  CheckpointManager store(dir_);
  ASSERT_TRUE(store.Open(21, false).ok());

  FaultInjector injector(1);
  injector.FailMatching(FaultSite::kFileSync, "fold-naive-bayes-0",
                        Status::Internal("disk full"));
  {
    ScopedFaultInjection scope(&injector);
    store.SaveFold("naive-bayes", 0, MakeFold());
  }
  EXPECT_GE(store.save_failures(), 1u);
  // A fold that failed to persist must not be marked done: resuming from
  // this state would otherwise skip work that never landed on disk.
  EXPECT_FALSE(store.IsDone("fold/naive-bayes/0"));
  CheckpointManager resumed(dir_);
  ASSERT_TRUE(resumed.Open(21, true).ok());
  FoldPredictions loaded;
  EXPECT_FALSE(resumed.LoadFold("naive-bayes", 0, &loaded));
}

}  // namespace
}  // namespace lsd
