// Network transport tests: wire-protocol round trips, hostile-input
// classification (truncation, bit flips, oversized prefixes, version
// skew), the streaming FrameDecoder, and loopback end-to-end coverage of
// NetServer + NetClient in front of a real MatchService — ok/degraded/
// shed/expired-deadline/reload-under-traffic responses byte-compared
// against direct in-process Process() calls at 1/2/4/8 workers, plus the
// kNetAccept/kNetRead/kNetWrite fault seams and both backpressure rules.
//
// The NetSoakTest.DISABLED_* cases are tier2: skipped in the default ctest
// pass, run explicitly by the `net_loopback_soak` ctest entry and by
// scripts/check.sh under TSan.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/artifact_io.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/lsd_system.h"
#include "gtest/gtest.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/match_service.h"
#include "xml/dtd_parser.h"
#include "xml/xml_parser.h"

namespace lsd {
namespace net {
namespace {

// ---------------------------------------------------------------------------
// Wire protocol: round trips
// ---------------------------------------------------------------------------

WireRequest SampleRequest() {
  WireRequest request;
  request.id = "req-42";
  request.deadline_ms = 1500;
  request.dtd_text = "<!ELEMENT a (#PCDATA)>\n";
  request.xml_text = "<listings><a>x</a></listings>\n";
  return request;
}

WireResponse SampleResponse() {
  WireResponse response;
  response.id = "req-42";
  response.outcome = WireOutcome::kDegraded;
  response.status_code = StatusCode::kOk;
  response.status_message = "";
  response.mapping = "a <=> ADDRESS\n";
  response.fingerprint = "a <=> ADDRESS\n--\na ADDRESS 0.5\n";
  response.attempts = 2;
  response.retries = 1;
  response.latency_micros = 12345;
  response.model_version = 7;
  response.breaker_skipped = true;
  response.deadline_overrun = false;
  return response;
}

TEST(NetWireTest, RequestRoundTripPreservesEveryField) {
  WireRequest request = SampleRequest();
  std::string frame = EncodeRequestFrame(request);
  auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, FrameType::kRequest);
  auto round = DecodeRequestPayload(decoded->payload);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->id, request.id);
  EXPECT_EQ(round->deadline_ms, request.deadline_ms);
  EXPECT_EQ(round->dtd_text, request.dtd_text);
  EXPECT_EQ(round->xml_text, request.xml_text);
}

TEST(NetWireTest, NegativeDeadlineSurvivesTheRoundTrip) {
  WireRequest request = SampleRequest();
  request.deadline_ms = -1;
  auto decoded = DecodeFrame(EncodeRequestFrame(request));
  ASSERT_TRUE(decoded.ok());
  auto round = DecodeRequestPayload(decoded->payload);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->deadline_ms, -1);
}

TEST(NetWireTest, ResponseRoundTripPreservesEveryField) {
  WireResponse response = SampleResponse();
  response.status_code = StatusCode::kUnavailable;
  response.status_message = "queue full";
  response.outcome = WireOutcome::kShed;
  auto decoded = DecodeFrame(EncodeResponseFrame(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, FrameType::kResponse);
  auto round = DecodeResponsePayload(decoded->payload);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->id, response.id);
  EXPECT_EQ(round->outcome, WireOutcome::kShed);
  EXPECT_EQ(round->status_code, StatusCode::kUnavailable);
  EXPECT_EQ(round->status_message, "queue full");
  EXPECT_EQ(round->mapping, response.mapping);
  EXPECT_EQ(round->fingerprint, response.fingerprint);
  EXPECT_EQ(round->attempts, 2u);
  EXPECT_EQ(round->retries, 1u);
  EXPECT_EQ(round->latency_micros, 12345u);
  EXPECT_EQ(round->model_version, 7u);
  EXPECT_TRUE(round->breaker_skipped);
  EXPECT_FALSE(round->deadline_overrun);
  EXPECT_EQ(round->ToStatus().code(), StatusCode::kUnavailable);
}

TEST(NetWireTest, OversizedStatusMessageIsClampedOnEncode) {
  // Error messages echo client-controlled bytes (a payload decode error
  // quotes the offending field). Unclamped, a hostile near-limit request
  // would produce an error response payload past kMaxFramePayloadBytes
  // and abort in EncodeFrame — the single-frame remote-DoS shape.
  WireResponse response = SampleResponse();
  response.status_code = StatusCode::kParseError;
  response.status_message = std::string(kMaxFramePayloadBytes, 'x');
  std::string frame = EncodeResponseFrame(response);
  auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  auto round = DecodeResponsePayload(decoded->payload);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_LE(round->status_message.size(), kMaxStatusMessageBytes);
  EXPECT_NE(round->status_message.find("[truncated]"), std::string::npos);
  // Everything else round-trips untouched.
  EXPECT_EQ(round->id, response.id);
  EXPECT_EQ(round->mapping, response.mapping);

  // At and below the limit the message is preserved byte-for-byte.
  response.status_message = std::string(kMaxStatusMessageBytes, 'y');
  auto exact = DecodeResponsePayload(
      DecodeFrame(EncodeResponseFrame(response))->payload);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->status_message, response.status_message);
}

TEST(NetWireTest, OversizedResponsePayloadFallsBackToBoundedError) {
  // A mapping too large for any frame must degrade to a small error
  // response that preserves id and scalar fields — never an abort.
  WireResponse response = SampleResponse();
  response.outcome = WireOutcome::kOk;
  response.mapping = std::string(kMaxFramePayloadBytes + 1, 'm');
  std::string frame = EncodeBoundedResponseFrame(response);
  auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  auto round = DecodeResponsePayload(decoded->payload);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->id, response.id);
  EXPECT_EQ(round->outcome, WireOutcome::kFailed);
  EXPECT_EQ(round->status_code, StatusCode::kOutOfRange);
  EXPECT_TRUE(round->mapping.empty());
  EXPECT_EQ(round->attempts, response.attempts);
  EXPECT_EQ(round->model_version, response.model_version);
}

TEST(NetWireTest, PayloadKindMismatchIsInvalidArgument) {
  // A response payload in a request frame is structurally a valid frame;
  // the artifact kind check is what catches the crossed wires.
  std::string frame =
      EncodeFrame(FrameType::kRequest, EncodeResponsePayload(SampleResponse()));
  auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.ok());
  auto request = DecodeRequestPayload(decoded->payload);
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Wire protocol: hostile-input classification. Damage must always land in
// the documented taxonomy and never crash, hang, or decode to garbage.
// ---------------------------------------------------------------------------

bool InDamageTaxonomy(StatusCode code) {
  return code == StatusCode::kParseError ||
         code == StatusCode::kFailedPrecondition ||
         code == StatusCode::kOutOfRange || code == StatusCode::kDataLoss;
}

TEST(NetHostileTest, EveryTruncationPointIsOutOfRange) {
  std::string frame = EncodeRequestFrame(SampleRequest());
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    auto decoded = DecodeFrame(std::string_view(frame).substr(0, cut));
    ASSERT_FALSE(decoded.ok()) << "cut at " << cut;
    EXPECT_EQ(decoded.status().code(), StatusCode::kOutOfRange)
        << "cut at " << cut << ": " << decoded.status().ToString();
  }
}

TEST(NetHostileTest, EverySingleBitFlipIsClassified) {
  std::string frame = EncodeRequestFrame(SampleRequest());
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = frame;
      damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
      auto decoded = DecodeFrame(damaged);
      if (decoded.ok()) {
        // The only flips a frame-level check cannot see are inside the
        // length field in ways that keep both length and CRC consistent —
        // impossible for a single bit — so a clean decode means the flip
        // landed in the payload AND the CRC missed it. CRC32 catches all
        // single-bit errors; reaching here is a bug.
        ADD_FAILURE() << "bit flip at byte " << byte << " bit " << bit
                      << " decoded cleanly";
        continue;
      }
      EXPECT_TRUE(InDamageTaxonomy(decoded.status().code()))
          << "byte " << byte << " bit " << bit << ": "
          << decoded.status().ToString();
    }
  }
}

TEST(NetHostileTest, OversizedLengthPrefixRejectedFromHeaderAlone) {
  // Construct a header promising far more payload than the decoder's
  // limit; the decoder must reject it with only the header in hand, not
  // wait for (or buffer) gigabytes that never arrive.
  WireRequest request = SampleRequest();
  std::string frame = EncodeRequestFrame(request);
  const uint32_t huge = 1u << 30;
  for (int i = 0; i < 4; ++i) {
    frame[8 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  }
  FrameDecoder decoder(/*max_payload=*/1 << 20);
  decoder.Feed(std::string_view(frame).substr(0, kFrameHeaderBytes));
  DecodedFrame out;
  auto got = decoder.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kOutOfRange);
}

TEST(NetHostileTest, VersionSkewIsFailedPrecondition) {
  std::string frame = EncodeRequestFrame(SampleRequest());
  frame[4] = static_cast<char>(kWireVersion + 1);
  auto decoded = DecodeFrame(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kFailedPrecondition);
}

TEST(NetHostileTest, BadMagicIsParseError) {
  std::string frame = EncodeRequestFrame(SampleRequest());
  frame[0] = 'X';
  auto decoded = DecodeFrame(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
}

TEST(NetHostileTest, CorruptPayloadIsDataLoss) {
  std::string frame = EncodeRequestFrame(SampleRequest());
  frame[kFrameHeaderBytes + 3] ^= 0x40;
  auto decoded = DecodeFrame(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(NetHostileTest, TrailingBytesAfterAFrameAreParseError) {
  std::string frame = EncodeRequestFrame(SampleRequest()) + "x";
  auto decoded = DecodeFrame(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
}

// Property test: random mutations of valid frames and pure-garbage byte
// strings, both one-shot and streamed. Every decode either succeeds (the
// mutation missed, possible only for multi-bit payload flips CRC32 can
// theoretically alias — still correct framing), needs more bytes, or
// classifies into the taxonomy. It never crashes and never misreads type
// or payload size.
TEST(NetHostileTest, RandomlyMutatedFramesAlwaysClassify) {
  Rng rng(20260808);
  const std::string base = EncodeRequestFrame(SampleRequest());
  for (int trial = 0; trial < 500; ++trial) {
    std::string bytes = base;
    // 1-8 random mutations: flips, truncation, or growth.
    int mutations = 1 + static_cast<int>(rng.Next() % 8);
    for (int m = 0; m < mutations; ++m) {
      switch (rng.Next() % 3) {
        case 0: {  // bit flip
          size_t at = rng.Next() % bytes.size();
          bytes[at] = static_cast<char>(bytes[at] ^ (1 << (rng.Next() % 8)));
          break;
        }
        case 1:  // truncate
          bytes.resize(rng.Next() % (bytes.size() + 1));
          break;
        default:  // append garbage
          bytes.push_back(static_cast<char>(rng.Next() & 0xff));
      }
      if (bytes.empty()) bytes = base;
    }
    auto one_shot = DecodeFrame(bytes);
    if (!one_shot.ok()) {
      EXPECT_TRUE(InDamageTaxonomy(one_shot.status().code()))
          << one_shot.status().ToString();
    }
    // Stream the same bytes in random-sized chunks.
    FrameDecoder decoder;
    size_t fed = 0;
    while (fed < bytes.size()) {
      size_t chunk = 1 + rng.Next() % 37;
      chunk = std::min(chunk, bytes.size() - fed);
      decoder.Feed(std::string_view(bytes).substr(fed, chunk));
      fed += chunk;
      DecodedFrame frame;
      auto got = decoder.Next(&frame);
      if (!got.ok()) {
        EXPECT_TRUE(InDamageTaxonomy(got.status().code()))
            << got.status().ToString();
        break;
      }
    }
  }
}

TEST(NetHostileTest, PureGarbageNeverDecodes) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    size_t len = rng.Next() % 256;
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.Next() & 0xff));
    }
    auto decoded = DecodeFrame(garbage);
    if (decoded.ok()) {
      // A random 16+ byte string opening with "LSDN", version 1, a sane
      // type, zero reserved bytes, AND a matching CRC is beyond chance.
      ADD_FAILURE() << "garbage of " << len << " bytes decoded";
    } else {
      EXPECT_TRUE(InDamageTaxonomy(decoded.status().code()));
    }
  }
}

// ---------------------------------------------------------------------------
// FrameDecoder: streaming reassembly and sticky failure
// ---------------------------------------------------------------------------

TEST(NetFrameDecoderTest, ReassemblesFramesFedOneByteAtATime) {
  WireRequest first = SampleRequest();
  WireRequest second = SampleRequest();
  second.id = "req-43";
  std::string stream = EncodeRequestFrame(first) + EncodeRequestFrame(second);

  FrameDecoder decoder;
  std::vector<std::string> ids;
  for (char c : stream) {
    decoder.Feed(std::string_view(&c, 1));
    DecodedFrame frame;
    auto got = decoder.Next(&frame);
    ASSERT_TRUE(got.ok());
    if (*got) {
      auto request = DecodeRequestPayload(frame.payload);
      ASSERT_TRUE(request.ok());
      ids.push_back(request->id);
    }
  }
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], "req-42");
  EXPECT_EQ(ids[1], "req-43");
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(NetFrameDecoderTest, ErrorIsSticky) {
  FrameDecoder decoder;
  std::string frame = EncodeRequestFrame(SampleRequest());
  frame[0] = 'X';
  decoder.Feed(frame);
  DecodedFrame out;
  auto first = decoder.Next(&out);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kParseError);
  // Even feeding a pristine frame afterwards cannot resynchronize: the
  // transport must tear the connection down instead.
  decoder.Feed(EncodeRequestFrame(SampleRequest()));
  auto second = decoder.Next(&out);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kParseError);
}

// ---------------------------------------------------------------------------
// Loopback end-to-end: NetServer + NetClient against a real MatchService.
// The fixture mirrors tests/service_test.cpp's micro-domain.
// ---------------------------------------------------------------------------

class NetLoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mediated_ = ParseDtd(R"(
      <!ELEMENT HOUSE (ADDRESS, DESCRIPTION, CONTACT-INFO)>
      <!ELEMENT ADDRESS (#PCDATA)>
      <!ELEMENT DESCRIPTION (#PCDATA)>
      <!ELEMENT CONTACT-INFO (AGENT-NAME, AGENT-PHONE)>
      <!ELEMENT AGENT-NAME (#PCDATA)>
      <!ELEMENT AGENT-PHONE (#PCDATA)>
    )").value();

    source_a_.name = "a.com";
    source_a_.schema = ParseDtd(
        R"(<!ELEMENT house-listing (location, comments, contact)>
           <!ELEMENT location (#PCDATA)>
           <!ELEMENT comments (#PCDATA)>
           <!ELEMENT contact (name, phone)>
           <!ELEMENT name (#PCDATA)>
           <!ELEMENT phone (#PCDATA)>)").value();
    static const char* kCities[] = {"Miami, FL", "Boston, MA", "Seattle, WA",
                                    "Austin, TX"};
    static const char* kDescs[] = {
        "Fantastic house great location", "Beautiful home spacious yard",
        "Great views close to river", "Charming cottage near schools"};
    static const char* kNames[] = {"Kate Richardson", "Mike Smith",
                                   "Jane Kendall", "Matt Brown"};
    for (size_t i = 0; i < 12; ++i) {
      std::string xml = std::string("<house-listing><location>") +
                        kCities[i % 4] + "</location><comments>" +
                        kDescs[i % 4] + "</comments><contact><name>" +
                        kNames[i % 4] + "</name><phone>(555) 321 " +
                        std::to_string(1000 + 7 * i) +
                        "</phone></contact></house-listing>";
      source_a_.listings.push_back(ParseXml(xml).value());
    }
    gold_a_.Set("house-listing", "HOUSE");
    gold_a_.Set("location", "ADDRESS");
    gold_a_.Set("comments", "DESCRIPTION");
    gold_a_.Set("contact", "CONTACT-INFO");
    gold_a_.Set("name", "AGENT-NAME");
    gold_a_.Set("phone", "AGENT-PHONE");
  }

  MatchService::ReplicaFactory Factory() {
    return [this]() -> StatusOr<std::unique_ptr<LsdSystem>> {
      auto system = std::make_unique<LsdSystem>(mediated_, LsdConfig());
      LSD_RETURN_IF_ERROR(system->AddTrainingSource(source_a_, gold_a_));
      LSD_RETURN_IF_ERROR(system->Train());
      return StatusOr<std::unique_ptr<LsdSystem>>(std::move(system));
    };
  }

  static MatchServiceOptions ServiceOptions(size_t workers) {
    MatchServiceOptions options;
    options.workers = workers;
    options.max_queue_depth = 64;
    options.breaker.failure_threshold = 0;
    options.sleep_millis = [](int64_t) {};
    return options;
  }

  /// A healthy target request; `variant` seeds distinct-but-fixed content.
  static ServiceRequest TargetRequest(const std::string& id,
                                      size_t variant = 0) {
    static const char* kCities[] = {"Portland, OR", "Denver, CO", "Miami, FL",
                                    "Boston, MA"};
    ServiceRequest request;
    request.id = id;
    request.dtd_text =
        "<!ELEMENT home (area, extra-info, reach)>"
        "<!ELEMENT area (#PCDATA)>"
        "<!ELEMENT extra-info (#PCDATA)>"
        "<!ELEMENT reach (realtor, work-phone)>"
        "<!ELEMENT realtor (#PCDATA)>"
        "<!ELEMENT work-phone (#PCDATA)>";
    std::string xml = "<listings>";
    for (size_t i = 0; i < 4; ++i) {
      xml += "<home><area>" + std::string(kCities[(variant + i) % 4]) +
             "</area><extra-info>Spacious home fantastic neighborhood"
             "</extra-info><reach><realtor>Jane Kendall</realtor>"
             "<work-phone>(555) 777 " + std::to_string(2000 + 13 * i) +
             "</work-phone></reach></home>";
    }
    xml += "</listings>";
    request.xml_text = std::move(xml);
    return request;
  }

  static WireRequest ToWire(const ServiceRequest& request) {
    WireRequest wire;
    wire.id = request.id;
    wire.deadline_ms = request.deadline_ms;
    wire.dtd_text = request.dtd_text;
    wire.xml_text = request.xml_text;
    return wire;
  }

  static NetClientOptions ClientFor(const NetServer& server) {
    NetClientOptions options;
    options.port = server.port();
    options.backoff.max_retries = 3;
    options.backoff.initial_ms = 1;
    options.backoff.max_ms = 20;
    return options;
  }

  Dtd mediated_;
  DataSource source_a_;
  Mapping gold_a_;
};

TEST_F(NetLoopbackTest, OkResponsesAreByteIdenticalAcrossWorkerCounts) {
  // The reference: the same request answered in process, no network.
  auto reference_service = MatchService::Create(Factory(), ServiceOptions(1));
  ASSERT_TRUE(reference_service.ok());
  std::vector<ServiceResponse> reference;
  for (size_t variant = 0; variant < 3; ++variant) {
    reference.push_back((*reference_service)
                            ->Process(TargetRequest(
                                "ref-" + std::to_string(variant), variant)));
    ASSERT_EQ(reference.back().outcome, RequestOutcome::kOk);
  }
  (*reference_service)->Stop();

  for (size_t workers : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    auto service = MatchService::Create(Factory(), ServiceOptions(workers));
    ASSERT_TRUE(service.ok());
    auto server = NetServer::Create(service->get(), NetServerOptions());
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    NetClient client(ClientFor(**server));
    for (size_t variant = 0; variant < 3; ++variant) {
      auto response = client.Call(ToWire(
          TargetRequest("net-" + std::to_string(variant), variant)));
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      EXPECT_EQ(response->outcome, WireOutcome::kOk);
      // The byte-identity contract: what crossed the wire is exactly what
      // an in-process caller gets, at every worker count.
      EXPECT_EQ(response->mapping, reference[variant].mapping);
      EXPECT_EQ(response->fingerprint, reference[variant].fingerprint);
      EXPECT_EQ(response->model_version, 1u);
    }
    (*server)->Stop();
    (*service)->Stop();
  }
}

TEST_F(NetLoopbackTest, ExpiredDeadlineDegradesIdenticallyOverTheWire) {
  auto service = MatchService::Create(Factory(), ServiceOptions(1));
  ASSERT_TRUE(service.ok());

  // Reference: a zero-budget request in process — already expired at
  // submit, so the anytime fallback answers (degraded, deterministic).
  ServiceRequest direct = TargetRequest("direct-expired");
  direct.deadline_ms = 0;
  ServiceResponse expected = (*service)->Process(std::move(direct));
  ASSERT_EQ(expected.outcome, RequestOutcome::kDegraded);

  auto server = NetServer::Create(service->get(), NetServerOptions());
  ASSERT_TRUE(server.ok());
  NetClient client(ClientFor(**server));
  ServiceRequest over_wire = TargetRequest("net-expired");
  over_wire.deadline_ms = 0;
  auto response = client.Call(ToWire(over_wire));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->outcome, WireOutcome::kDegraded);
  EXPECT_EQ(response->mapping, expected.mapping);
  EXPECT_EQ(response->fingerprint, expected.fingerprint);
  EXPECT_FALSE(response->deadline_overrun);
  (*server)->Stop();
  (*service)->Stop();
}

TEST_F(NetLoopbackTest, AdmissionShedBecomesImmediateUnavailableResponse) {
  auto service = MatchService::Create(Factory(), ServiceOptions(1));
  ASSERT_TRUE(service.ok());
  auto server = NetServer::Create(service->get(), NetServerOptions());
  ASSERT_TRUE(server.ok());

  FaultInjector injector(11);
  injector.FailMatching(FaultSite::kServiceAdmit, "shed-me",
                        Status::Unavailable("injected admission shed"));
  ScopedFaultInjection scoped(&injector);

  NetClient client(ClientFor(**server));
  auto shed = client.Call(ToWire(TargetRequest("shed-me")));
  // A shed is a *response*, not a transport failure: the client must hand
  // it back verbatim instead of burning its own transport retries.
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->outcome, WireOutcome::kShed);
  EXPECT_EQ(shed->status_code, StatusCode::kUnavailable);
  EXPECT_EQ(shed->attempts, 0u);
  EXPECT_TRUE(shed->mapping.empty());

  // The same connection still serves healthy requests afterwards.
  auto healthy = client.Call(ToWire(TargetRequest("healthy-after-shed")));
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_EQ(healthy->outcome, WireOutcome::kOk);
  EXPECT_GE(injector.injected_count(), 1u);
  (*server)->Stop();
  (*service)->Stop();
}

TEST_F(NetLoopbackTest, MalformedPayloadGetsErrorResponseNotDisconnect) {
  auto service = MatchService::Create(Factory(), ServiceOptions(1));
  ASSERT_TRUE(service.ok());
  auto server = NetServer::Create(service->get(), NetServerOptions());
  ASSERT_TRUE(server.ok());

  // Hand-roll a frame whose payload is a response artifact: frames fine,
  // decodes as a request with kInvalidArgument. The stream stays in sync,
  // so the server must answer (failed) and keep the connection.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons((*server)->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string bad =
      EncodeFrame(FrameType::kRequest, EncodeResponsePayload(SampleResponse()));
  std::string good = EncodeRequestFrame(ToWire(TargetRequest("after-bad")));
  std::string stream = bad + good;
  ASSERT_EQ(::send(fd, stream.data(), stream.size(), 0),
            static_cast<ssize_t>(stream.size()));

  FrameDecoder decoder;
  std::vector<WireResponse> responses;
  char buf[4096];
  while (responses.size() < 2) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "server disconnected instead of answering";
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    while (true) {
      DecodedFrame frame;
      auto got = decoder.Next(&frame);
      ASSERT_TRUE(got.ok());
      if (!*got) break;
      auto response = DecodeResponsePayload(frame.payload);
      ASSERT_TRUE(response.ok());
      responses.push_back(std::move(*response));
    }
  }
  ::close(fd);
  EXPECT_EQ(responses[0].outcome, WireOutcome::kFailed);
  EXPECT_EQ(responses[0].status_code, StatusCode::kInvalidArgument);
  EXPECT_EQ(responses[1].id, "after-bad");
  EXPECT_EQ(responses[1].outcome, WireOutcome::kOk);
  (*server)->Stop();
  (*service)->Stop();
}

TEST_F(NetLoopbackTest, HostileDeadlineSectionGetsClampedErrorResponse) {
  // The reviewer-reported remote-DoS shape: a CRC-valid request whose
  // deadline-ms section is megabytes of junk. The decode error quotes the
  // field, so unclamped it would be echoed back verbatim; the server must
  // instead answer with a bounded error and keep the connection healthy.
  auto service = MatchService::Create(Factory(), ServiceOptions(1));
  ASSERT_TRUE(service.ok());
  auto server = NetServer::Create(service->get(), NetServerOptions());
  ASSERT_TRUE(server.ok());

  Artifact hostile;
  hostile.kind = "net-request";
  hostile.sections.push_back({"id", "hostile"});
  hostile.sections.push_back({"deadline-ms", std::string(1u << 20, 'z')});
  hostile.sections.push_back({"dtd", ""});
  hostile.sections.push_back({"xml", ""});

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons((*server)->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string stream =
      EncodeFrame(FrameType::kRequest, EncodeArtifact(hostile)) +
      EncodeRequestFrame(ToWire(TargetRequest("after-hostile")));
  for (size_t off = 0; off < stream.size();) {
    ssize_t n = ::send(fd, stream.data() + off, stream.size() - off, 0);
    ASSERT_GT(n, 0);
    off += static_cast<size_t>(n);
  }

  FrameDecoder decoder;
  std::vector<WireResponse> responses;
  char buf[8192];
  while (responses.size() < 2) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "server disconnected (or died) instead of answering";
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    while (true) {
      DecodedFrame frame;
      auto got = decoder.Next(&frame);
      ASSERT_TRUE(got.ok());
      if (!*got) break;
      auto response = DecodeResponsePayload(frame.payload);
      ASSERT_TRUE(response.ok());
      responses.push_back(std::move(*response));
    }
  }
  ::close(fd);
  EXPECT_EQ(responses[0].outcome, WireOutcome::kFailed);
  EXPECT_EQ(responses[0].status_code, StatusCode::kParseError);
  EXPECT_LE(responses[0].status_message.size(), kMaxStatusMessageBytes);
  EXPECT_EQ(responses[1].id, "after-hostile");
  EXPECT_EQ(responses[1].outcome, WireOutcome::kOk);
  (*server)->Stop();
  (*service)->Stop();
}

TEST_F(NetLoopbackTest, CapacityRejectsDoNotCountAsAccepted) {
  // net.accepted minus net.connections_closed is the live-connection
  // figure; a connection rejected at capacity must inflate neither side.
  auto service = MatchService::Create(Factory(), ServiceOptions(1));
  ASSERT_TRUE(service.ok());
  NetServerOptions options;
  options.max_connections = 1;
  auto server = NetServer::Create(service->get(), options);
  ASSERT_TRUE(server.ok());
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();

  // Fill the single slot and prove it is registered (a full round trip).
  NetClient admitted(ClientFor(**server));
  auto response = admitted.Call(ToWire(TargetRequest("fills-capacity")));
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  // The second connection is accepted and immediately closed.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons((*server)->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  char buf[16];
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0) << "expected capacity EOF";
  ::close(fd);

  MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(after.CounterOf("net.accepted") - before.CounterOf("net.accepted"),
            1u);
  EXPECT_EQ(after.CounterOf("net.rejected_at_capacity") -
                before.CounterOf("net.rejected_at_capacity"),
            1u);
  (*server)->Stop();
  (*service)->Stop();
}

TEST_F(NetLoopbackTest, FramingDamageClosesTheConnection) {
  auto service = MatchService::Create(Factory(), ServiceOptions(1));
  ASSERT_TRUE(service.ok());
  auto server = NetServer::Create(service->get(), NetServerOptions());
  ASSERT_TRUE(server.ok());
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons((*server)->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string garbage = "this is definitely not an LSDN frame";
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));
  char buf[64];
  ssize_t n = ::recv(fd, buf, sizeof(buf), 0);  // Blocks until close.
  EXPECT_EQ(n, 0) << "expected EOF after framing damage";
  ::close(fd);

  MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  EXPECT_GE(after.CounterOf("net.frame_errors") -
                before.CounterOf("net.frame_errors"),
            1u);
  (*server)->Stop();
  (*service)->Stop();
}

TEST_F(NetLoopbackTest, ReloadUnderTrafficKeepsResponsesByteIdentical) {
  auto service = MatchService::Create(Factory(), ServiceOptions(2));
  ASSERT_TRUE(service.ok());
  ServiceResponse expected = (*service)->Process(TargetRequest("expected"));
  ASSERT_EQ(expected.outcome, RequestOutcome::kOk);

  auto server = NetServer::Create(service->get(), NetServerOptions());
  ASSERT_TRUE(server.ok());

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::atomic<int> completed{0};
  std::thread traffic([&] {
    NetClient client(ClientFor(**server));
    int i = 0;
    while (!stop.load()) {
      auto response =
          client.Call(ToWire(TargetRequest("traffic-" + std::to_string(i++))));
      if (!response.ok()) continue;  // Transport blips are not the point.
      ++completed;
      if (response->outcome == WireOutcome::kOk ||
          response->outcome == WireOutcome::kDegraded) {
        // The reload swaps in an identically-trained model, so every
        // response before, during, and after must carry the same bytes.
        if (response->mapping != expected.mapping ||
            response->fingerprint != expected.fingerprint) {
          ++mismatches;
        }
      }
    }
  });

  // Hot-swap while the client hammers. Same factory: the shadow
  // validation is against an identical model, so the swap must land.
  MatchService::ReloadOptions reload;
  reload.factory = Factory();
  auto outcome = (*service)->Reload(std::move(reload));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->swapped);

  // A few more requests against the new version, then stop.
  while (completed.load() < 6) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  traffic.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GE(completed.load(), 6);

  auto post = (*service)->Process(TargetRequest("post-reload"));
  EXPECT_EQ(post.model_version, 2u);
  EXPECT_EQ(post.mapping, expected.mapping);
  (*server)->Stop();
  (*service)->Stop();
}

TEST_F(NetLoopbackTest, ConcurrentClientsAllGetIdenticalBytes) {
  auto service = MatchService::Create(Factory(), ServiceOptions(4));
  ASSERT_TRUE(service.ok());
  ServiceResponse expected = (*service)->Process(TargetRequest("expected"));
  ASSERT_EQ(expected.outcome, RequestOutcome::kOk);

  auto server = NetServer::Create(service->get(), NetServerOptions());
  ASSERT_TRUE(server.ok());

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 5;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      NetClient client(ClientFor(**server));
      for (int i = 0; i < kRequestsPerClient; ++i) {
        auto response = client.Call(ToWire(TargetRequest(
            "c" + std::to_string(c) + "-" + std::to_string(i))));
        if (!response.ok() || response->outcome != WireOutcome::kOk ||
            response->mapping != expected.mapping ||
            response->fingerprint != expected.fingerprint) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  (*server)->Stop();
  (*service)->Stop();
}

// ---------------------------------------------------------------------------
// Fault seams: deterministic "conn-<n>" keys in accept order
// ---------------------------------------------------------------------------

TEST_F(NetLoopbackTest, AcceptFaultClosesFirstConnectionAndRetryRecovers) {
  auto service = MatchService::Create(Factory(), ServiceOptions(1));
  ASSERT_TRUE(service.ok());
  auto server = NetServer::Create(service->get(), NetServerOptions());
  ASSERT_TRUE(server.ok());

  FaultInjector injector(3);
  injector.FailMatching(FaultSite::kNetAccept, "conn-0",
                        Status::Internal("injected accept fault"));
  ScopedFaultInjection scoped(&injector);

  NetClient client(ClientFor(**server));
  auto response = client.Call(ToWire(TargetRequest("accept-fault")));
  // conn-0 was killed at accept; the client's transport retry reconnected
  // as conn-1, which is past the fault rule.
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->outcome, WireOutcome::kOk);
  EXPECT_GE(injector.injected_count(), 1u);
  (*server)->Stop();
  (*service)->Stop();
}

TEST_F(NetLoopbackTest, ReadFaultDropsMidStreamAndRetryRecovers) {
  auto service = MatchService::Create(Factory(), ServiceOptions(1));
  ASSERT_TRUE(service.ok());
  auto server = NetServer::Create(service->get(), NetServerOptions());
  ASSERT_TRUE(server.ok());

  FaultInjector injector(3);
  injector.FailMatching(FaultSite::kNetRead, "conn-0",
                        Status::Internal("injected read fault"));
  ScopedFaultInjection scoped(&injector);

  NetClient client(ClientFor(**server));
  auto response = client.Call(ToWire(TargetRequest("read-fault")));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->outcome, WireOutcome::kOk);
  EXPECT_GE(injector.injected_count(), 1u);
  (*server)->Stop();
  (*service)->Stop();
}

TEST_F(NetLoopbackTest, WriteFaultDropsQueuedResponseAndRetryRecovers) {
  auto service = MatchService::Create(Factory(), ServiceOptions(1));
  ASSERT_TRUE(service.ok());
  auto server = NetServer::Create(service->get(), NetServerOptions());
  ASSERT_TRUE(server.ok());

  FaultInjector injector(3);
  injector.FailMatching(FaultSite::kNetWrite, "conn-0",
                        Status::Internal("injected write fault"));
  ScopedFaultInjection scoped(&injector);

  NetClient client(ClientFor(**server));
  // conn-0 accepts the request and even executes it, but the connection
  // dies with the response queued — the retry-ambiguity case. Matching is
  // idempotent, so the client's resend on conn-1 is safe and succeeds.
  auto response = client.Call(ToWire(TargetRequest("write-fault")));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->outcome, WireOutcome::kOk);
  EXPECT_GE(injector.injected_count(), 1u);
  (*server)->Stop();
  (*service)->Stop();
}

// ---------------------------------------------------------------------------
// Backpressure: read throttling and the write-buffer bound
// ---------------------------------------------------------------------------

TEST_F(NetLoopbackTest, PipelinedBurstTripsReadThrottlingAndStillAnswers) {
  auto service = MatchService::Create(Factory(), ServiceOptions(1));
  ASSERT_TRUE(service.ok());
  NetServerOptions options;
  options.max_in_flight_per_connection = 1;  // Throttle on the 1st request.
  auto server = NetServer::Create(service->get(), options);
  ASSERT_TRUE(server.ok());
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons((*server)->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  constexpr int kBurst = 4;
  std::string stream;
  for (int i = 0; i < kBurst; ++i) {
    stream += EncodeRequestFrame(
        ToWire(TargetRequest("burst-" + std::to_string(i))));
  }
  ASSERT_EQ(::send(fd, stream.data(), stream.size(), 0),
            static_cast<ssize_t>(stream.size()));

  FrameDecoder decoder;
  int answered = 0;
  char buf[8192];
  while (answered < kBurst) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    while (true) {
      DecodedFrame frame;
      auto got = decoder.Next(&frame);
      ASSERT_TRUE(got.ok());
      if (!*got) break;
      auto response = DecodeResponsePayload(frame.payload);
      ASSERT_TRUE(response.ok());
      EXPECT_EQ(response->outcome, WireOutcome::kOk);
      ++answered;
    }
  }
  ::close(fd);

  MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  // Backpressure engaged (EPOLLIN came off at least once) but every
  // request was still answered: throttling delays, never drops.
  EXPECT_GE(after.CounterOf("net.read_throttles") -
                before.CounterOf("net.read_throttles"),
            1u);
  (*server)->Stop();
  (*service)->Stop();
}

TEST_F(NetLoopbackTest, WriteBufferOverflowClosesTheConnection) {
  auto service = MatchService::Create(Factory(), ServiceOptions(1));
  ASSERT_TRUE(service.ok());
  NetServerOptions options;
  // Far below one response frame: queueing any response overflows. This
  // simulates a peer that never drains multi-megabyte backlogs without
  // needing to actually fill kernel socket buffers.
  options.max_write_buffer_bytes = 8;
  auto server = NetServer::Create(service->get(), options);
  ASSERT_TRUE(server.ok());
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons((*server)->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string frame = EncodeRequestFrame(ToWire(TargetRequest("overflow")));
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));
  char buf[64];
  ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
  EXPECT_EQ(n, 0) << "expected EOF from the overflow close";
  ::close(fd);

  MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  EXPECT_GE(after.CounterOf("net.write_overflow_closes") -
                before.CounterOf("net.write_overflow_closes"),
            1u);
  (*server)->Stop();
  (*service)->Stop();
}

// ---------------------------------------------------------------------------
// Soak (tier2): sustained concurrent traffic with mixed deadlines and a
// mid-flight reload. Run by the `net_loopback_soak` ctest entry and under
// TSan in scripts/check.sh; DISABLED_ keeps it out of the tier-1 pass.
// ---------------------------------------------------------------------------

using NetSoakTest = NetLoopbackTest;

TEST_F(NetSoakTest, DISABLED_LoopbackSoakStaysDeterministic) {
  auto service = MatchService::Create(Factory(), ServiceOptions(4));
  ASSERT_TRUE(service.ok());
  ServiceResponse expected = (*service)->Process(TargetRequest("expected"));
  ASSERT_EQ(expected.outcome, RequestOutcome::kOk);
  ServiceRequest zero = TargetRequest("expected-zero");
  zero.deadline_ms = 0;
  ServiceResponse expected_degraded = (*service)->Process(std::move(zero));
  ASSERT_EQ(expected_degraded.outcome, RequestOutcome::kDegraded);

  auto server = NetServer::Create(service->get(), NetServerOptions());
  ASSERT_TRUE(server.ok());

  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 25;
  std::atomic<int> wrong_bytes{0};
  std::atomic<int> transport_failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      NetClient client(ClientFor(**server));
      for (int i = 0; i < kRequestsPerClient; ++i) {
        ServiceRequest request = TargetRequest(
            "soak-c" + std::to_string(c) + "-" + std::to_string(i));
        if (i % 5 == 4) request.deadline_ms = 0;  // Exercise the anytime path.
        auto response = client.Call(ToWire(request));
        if (!response.ok()) {
          ++transport_failures;
          continue;
        }
        if (response->outcome == WireOutcome::kOk) {
          if (response->mapping != expected.mapping ||
              response->fingerprint != expected.fingerprint) {
            ++wrong_bytes;
          }
        } else if (response->outcome == WireOutcome::kDegraded) {
          if (response->mapping != expected_degraded.mapping) ++wrong_bytes;
        }
        // Sheds are legitimate under load; anything else is terminal too —
        // the guarantee is determinism of the bytes, not zero shedding.
      }
    });
  }

  // Two reloads while the fleet hammers.
  for (int r = 0; r < 2; ++r) {
    MatchService::ReloadOptions reload;
    reload.factory = Factory();
    auto outcome = (*service)->Reload(std::move(reload));
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->swapped);
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(wrong_bytes.load(), 0);
  EXPECT_EQ(transport_failures.load(), 0);
  (*server)->Stop();
  (*service)->Stop();
}

}  // namespace
}  // namespace net
}  // namespace lsd
