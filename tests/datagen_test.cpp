#include <set>

#include "datagen/domains.h"
#include "datagen/value_generators.h"
#include "eval/experiment.h"
#include "gtest/gtest.h"

namespace lsd {
namespace {

// ---------------------------------------------------------------------------
// Value generators
// ---------------------------------------------------------------------------

TEST(ValueGeneratorTest, DeterministicGivenSeed) {
  Rng a(5), b(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(GenerateValue(ValueKind::kStreetAddress, 0, i, &a),
              GenerateValue(ValueKind::kStreetAddress, 0, i, &b));
  }
}

TEST(ValueGeneratorTest, MlsNumbersAreKeys) {
  Rng rng(1);
  std::set<std::string> seen;
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(
        seen.insert(GenerateValue(ValueKind::kMlsNumber, 2, i, &rng)).second);
  }
}

TEST(ValueGeneratorTest, PriceFormatsVaryBySource) {
  Rng rng(2);
  std::string v0 = GenerateValue(ValueKind::kPrice, 0, 0, &rng);
  EXPECT_NE(v0.find("$ "), std::string::npos);   // "$ 123,000"
  std::string v2 = GenerateValue(ValueKind::kPrice, 2, 0, &rng);
  EXPECT_EQ(v2.find('$'), std::string::npos);    // bare number
}

TEST(ValueGeneratorTest, PhoneFormatsVaryBySource) {
  Rng rng(3);
  std::string v0 = GenerateValue(ValueKind::kPhone, 0, 0, &rng);
  EXPECT_EQ(v0.front(), '(');
  std::string v1 = GenerateValue(ValueKind::kPhone, 1, 0, &rng);
  EXPECT_NE(v1.find('-'), std::string::npos);
}

TEST(ValueGeneratorTest, DescriptionsCarrySignalWords) {
  Rng rng(4);
  int signal_hits = 0;
  for (int i = 0; i < 50; ++i) {
    std::string description = GenerateHouseDescription(0, &rng);
    for (const char* word : {"fantastic", "great", "beautiful", "spacious",
                             "charming", "stunning", "lovely", "gorgeous",
                             "immaculate", "cozy", "bright", "updated",
                             "remodeled", "elegant", "delightful"}) {
      if (description.find(word) != std::string::npos) {
        ++signal_hits;
        break;
      }
    }
  }
  EXPECT_EQ(signal_hits, 50);  // every description has a signal adjective
}

TEST(ValueGeneratorTest, MaybeDirtyRespectsProbability) {
  Rng rng(6);
  int dirty = 0;
  for (int i = 0; i < 1000; ++i) {
    if (MaybeDirty("clean", 0.2, &rng) != "clean") ++dirty;
  }
  EXPECT_GT(dirty, 120);
  EXPECT_LT(dirty, 280);
  EXPECT_EQ(MaybeDirty("clean", 0.0, &rng), "clean");
}

TEST(ValueGeneratorTest, EveryKindProducesNonEmptyOrDirtyOnly) {
  Rng rng(8);
  for (int k = 0; k <= static_cast<int>(ValueKind::kPageViews); ++k) {
    std::string v =
        GenerateValue(static_cast<ValueKind>(k), 1, 3, &rng);
    EXPECT_FALSE(v.empty()) << "kind " << k;
  }
}

// ---------------------------------------------------------------------------
// Domain realization
// ---------------------------------------------------------------------------

class DomainParamTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DomainParamTest, MediatedSchemaIsValid) {
  auto spec = GetDomainSpec(GetParam());
  ASSERT_TRUE(spec.ok());
  Dtd mediated = BuildMediatedDtd(*spec);
  EXPECT_TRUE(mediated.Validate().ok());
}

TEST_P(DomainParamTest, SourcesValidateAgainstTheirSchemas) {
  auto domain = MakeEvaluationDomain(GetParam(), 5, 15, 7);
  ASSERT_TRUE(domain.ok());
  ASSERT_EQ(domain->sources.size(), 5u);
  for (const GeneratedSource& gen : domain->sources) {
    EXPECT_TRUE(gen.source.ValidateListings().ok()) << gen.source.name;
    EXPECT_EQ(gen.source.listings.size(), 15u);
  }
}

TEST_P(DomainParamTest, GoldMappingCoversEveryTagWithValidLabels) {
  auto domain = MakeEvaluationDomain(GetParam(), 5, 5, 7);
  ASSERT_TRUE(domain.ok());
  for (const GeneratedSource& gen : domain->sources) {
    for (const std::string& tag : gen.source.schema.AllTags()) {
      const std::string* label = gen.gold.Find(tag);
      ASSERT_NE(label, nullptr) << tag;
      EXPECT_TRUE(*label == "OTHER" || domain->mediated.Contains(*label))
          << *label;
    }
    // 1-1: no mediated label claimed by two tags.
    std::map<std::string, int> counts;
    for (const auto& [tag, label] : gen.gold.entries()) {
      if (label != "OTHER") ++counts[label];
    }
    for (const auto& [label, count] : counts) {
      EXPECT_EQ(count, 1) << label;
    }
  }
}

TEST_P(DomainParamTest, SourcesDifferInVocabulary) {
  auto domain = MakeEvaluationDomain(GetParam(), 5, 5, 7);
  ASSERT_TRUE(domain.ok());
  // Across source pairs, tag vocabularies must not be identical.
  std::set<std::string> tag_sets;
  for (const GeneratedSource& gen : domain->sources) {
    std::string joined;
    for (const std::string& tag : gen.source.schema.AllTags()) {
      joined += tag + "|";
    }
    tag_sets.insert(joined);
  }
  EXPECT_GE(tag_sets.size(), 4u);  // at least 4 of 5 distinct
}

TEST_P(DomainParamTest, GoldSatisfiesDomainConstraints) {
  auto domain = MakeEvaluationDomain(GetParam(), 5, 25, 7);
  ASSERT_TRUE(domain.ok());
  auto constraints = MakeDomainConstraints(*domain);
  LabelSpace labels(domain->mediated.AllTags());
  for (const GeneratedSource& gen : domain->sources) {
    auto columns = ExtractColumns(gen.source);
    ASSERT_TRUE(columns.ok());
    ConstraintContext context(&gen.source.schema, &*columns);
    Assignment assignment(context.tags().size());
    for (size_t t = 0; t < context.tags().size(); ++t) {
      assignment.labels[t] =
          labels.IndexOf(gen.gold.LabelOrOther(context.tags()[t]));
      ASSERT_GE(assignment.labels[t], 0);
    }
    for (const auto& constraint : constraints) {
      if (!constraint->IsHard()) continue;
      EXPECT_EQ(constraint->Cost(assignment, labels, context), 0.0)
          << gen.source.name << " violates: " << constraint->Describe();
    }
  }
}

TEST_P(DomainParamTest, DataSeedResamplesDataNotSchema) {
  auto spec = GetDomainSpec(GetParam());
  ASSERT_TRUE(spec.ok());
  Domain a = RealizeDomain(*spec, 2, 5, 7, 100);
  Domain b = RealizeDomain(*spec, 2, 5, 7, 200);
  for (size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(a.sources[s].source.schema.ToString(),
              b.sources[s].source.schema.ToString());
    EXPECT_FALSE(a.sources[s].source.listings[0].root ==
                 b.sources[s].source.listings[0].root);
  }
}

TEST_P(DomainParamTest, RealizationIsDeterministic) {
  auto spec = GetDomainSpec(GetParam());
  ASSERT_TRUE(spec.ok());
  Domain a = RealizeDomain(*spec, 3, 5, 7);
  Domain b = RealizeDomain(*spec, 3, 5, 7);
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(a.sources[s].source.schema.ToString(),
              b.sources[s].source.schema.ToString());
    EXPECT_TRUE(a.sources[s].source.listings[2].root ==
                b.sources[s].source.listings[2].root);
    EXPECT_EQ(a.sources[s].gold.ToString(), b.sources[s].gold.ToString());
  }
}

INSTANTIATE_TEST_SUITE_P(AllDomains, DomainParamTest,
                         ::testing::Values("real-estate-1", "time-schedule",
                                           "faculty-listings",
                                           "real-estate-2"));

TEST(DomainTest, UnknownDomainRejected) {
  EXPECT_FALSE(GetDomainSpec("no-such-domain").ok());
  EXPECT_FALSE(MakeEvaluationDomain("no-such-domain", 5, 5, 7).ok());
}

TEST(DomainTest, MediatedShapesMatchTable3) {
  struct Expected {
    const char* name;
    size_t tags, non_leaf, depth;
  };
  for (const Expected& e :
       {Expected{"real-estate-1", 20, 4, 3}, Expected{"time-schedule", 23, 6, 4},
        Expected{"faculty-listings", 14, 4, 3},
        Expected{"real-estate-2", 66, 13, 4}}) {
    auto spec = GetDomainSpec(e.name);
    ASSERT_TRUE(spec.ok());
    Dtd mediated = BuildMediatedDtd(*spec);
    EXPECT_EQ(mediated.AllTags().size(), e.tags) << e.name;
    EXPECT_EQ(mediated.NonLeafTags().size(), e.non_leaf) << e.name;
    EXPECT_EQ(mediated.MaxDepth(), e.depth) << e.name;
  }
}

TEST(DomainTest, OfficeFunctionalDependencyHoldsInData) {
  auto domain = MakeEvaluationDomain("real-estate-1", 5, 40, 7);
  ASSERT_TRUE(domain.ok());
  for (const GeneratedSource& gen : domain->sources) {
    int name_tag = -1, phone_tag = -1;
    for (const auto& [tag, label] : gen.gold.entries()) {
      if (label == "OFFICE-NAME") name_tag = 1;
      if (label == "OFFICE-PHONE") phone_tag = 1;
    }
    if (name_tag < 0 || phone_tag < 0) continue;  // source lacks office info
    auto columns = ExtractColumns(gen.source);
    ASSERT_TRUE(columns.ok());
    ConstraintContext context(&gen.source.schema, &*columns);
    int a = context.TagIndex(gen.gold.TagsWithLabel("OFFICE-NAME")[0]);
    int c = context.TagIndex(gen.gold.TagsWithLabel("OFFICE-PHONE")[0]);
    EXPECT_TRUE(context.FunctionalDependencyHolds(a, a, c)) << gen.source.name;
  }
}

// ---------------------------------------------------------------------------
// Experiment scaffolding
// ---------------------------------------------------------------------------

TEST(CombinationsTest, CountsAndContents) {
  auto c53 = Combinations(5, 3);
  EXPECT_EQ(c53.size(), 10u);  // the paper's 10 train/test splits
  std::set<std::vector<size_t>> unique(c53.begin(), c53.end());
  EXPECT_EQ(unique.size(), 10u);
  for (const auto& combo : c53) {
    EXPECT_EQ(combo.size(), 3u);
    EXPECT_TRUE(std::is_sorted(combo.begin(), combo.end()));
  }
  EXPECT_EQ(Combinations(3, 3).size(), 1u);
  EXPECT_TRUE(Combinations(2, 3).empty());
}

TEST(MetricsTest, AccuracyCountsOnlyMatchable) {
  Mapping gold;
  gold.Set("a", "X");
  gold.Set("b", "Y");
  gold.Set("c", "OTHER");
  Mapping predicted;
  predicted.Set("a", "X");
  predicted.Set("b", "WRONG");
  predicted.Set("c", "X");  // wrong, but unmatchable: not counted
  AccuracyBreakdown breakdown = ScoreMapping(predicted, gold);
  EXPECT_EQ(breakdown.matchable, 2u);
  EXPECT_EQ(breakdown.correct, 1u);
  EXPECT_DOUBLE_EQ(breakdown.accuracy(), 0.5);
  EXPECT_EQ(breakdown.other_total, 1u);
  EXPECT_EQ(breakdown.other_correct, 0u);
}

TEST(MetricsTest, MissingPredictionsCountWrong) {
  Mapping gold;
  gold.Set("a", "X");
  Mapping empty;
  EXPECT_DOUBLE_EQ(MatchingAccuracy(empty, gold), 0.0);
}

TEST(MetricsTest, RunningStat) {
  RunningStat stat;
  stat.Add(0.5);
  stat.Add(1.0);
  stat.Add(0.0);
  EXPECT_EQ(stat.count(), 3u);
  EXPECT_DOUBLE_EQ(stat.mean(), 0.5);
  EXPECT_DOUBLE_EQ(stat.min(), 0.0);
  EXPECT_DOUBLE_EQ(stat.max(), 1.0);
}

TEST(VariantsTest, RostersAreConsistent) {
  auto fig8a = Figure8aVariants(/*county_active=*/true);
  // 4 base + meta + meta+constraints + full.
  EXPECT_EQ(fig8a.size(), 7u);
  auto lesions = LesionVariants(false);
  EXPECT_EQ(lesions.size(), 5u);
  for (const SystemVariant& v : LesionVariants(true)) {
    if (v.name == "without-name-matcher") {
      for (const std::string& learner : v.options.learners) {
        EXPECT_NE(learner, "name-matcher");
      }
    }
  }
  auto svd = SchemaVsDataVariants(false);
  EXPECT_EQ(svd.size(), 3u);
  EXPECT_EQ(svd[0].options.constraint_filter, ConstraintFilter::kSchemaOnly);
  EXPECT_EQ(svd[1].options.constraint_filter, ConstraintFilter::kDataOnly);
}

TEST(VariantsTest, ConfigForDomainTogglesCountyRecognizer) {
  LsdConfig base;
  EXPECT_TRUE(ConfigForDomain("real-estate-1", base).use_county_recognizer);
  EXPECT_TRUE(ConfigForDomain("real-estate-2", base).use_county_recognizer);
  EXPECT_FALSE(ConfigForDomain("time-schedule", base).use_county_recognizer);
  EXPECT_FALSE(ConfigForDomain("faculty-listings", base).use_county_recognizer);
}

}  // namespace
}  // namespace lsd
