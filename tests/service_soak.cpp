// Deterministic chaos soak for the MatchService (tier-2; also run under
// TSan by scripts/check.sh). For every worker count in {1, 2, 4, 8} the
// soak drives the service through five phases and asserts the service
// invariants:
//
//   A  healthy waves          — all ok, outputs recorded
//   B  gated overload         — exactly the overflow sheds, fail-fast,
//                               every admitted request reaches a terminal
//                               outcome once the gate opens
//   C  chaos waves            — key-pure learner faults, transient and
//                               persistent exec faults, corrupt payloads,
//                               interleaved with healthy traffic
//   D  breaker lifecycle      — paid failures open the breaker, skips are
//                               byte-identical to the paid path, the probe
//                               reopens under fault and closes after it
//   E  expired deadlines      — 0 ms budgets degrade to the anytime path,
//                               never fail, never overrun deadline+grace
//   F  prediction-cache parity— the same traffic through a cache-off and a
//                               cache-on service yields byte-identical
//                               responses, cold and warm, with nonzero
//                               hits on the warm wave
//   G  model lifecycle        — hot reload under gated load (every response
//                               attributable to exactly one version, zero
//                               swap-caused failures or sheds), a distinct
//                               retrained model swapped in through the
//                               shared prediction cache without stale
//                               reads, rejection/abort paths that leave
//                               serving untouched, and an injected
//                               post-swap regression that auto-rolls back
//                               within its probation window
//   H  submit/stop race       — submissions racing a concurrent Stop()
//                               always resolve their futures (executed or
//                               shed), never hang
//
// Every phase's per-request record (outcome, attempts, fingerprint or
// error code) is compared byte-for-byte against the 1-worker baseline:
// worker count must never change WHAT is computed, only when. (Phase H
// races real threads on purpose and records nothing.)
//
// Determinism levers: fault decisions are key-pure (request id / learner
// name), retries use fake sleeps, deadlines are infinite except in phase E
// (where they are already expired at submit), phase B pins scheduling with
// an interceptor gate, and phase D serializes requests via Process().

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/status.h"
#include "core/lsd_system.h"
#include "service/match_service.h"
#include "xml/dtd_parser.h"
#include "xml/xml_parser.h"

namespace lsd {
namespace {

#define SOAK_CHECK(cond, ...)                                          \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "FAIL %s:%d: %s\n  ", __FILE__, __LINE__,   \
                   #cond);                                             \
      std::fprintf(stderr, __VA_ARGS__);                               \
      std::fprintf(stderr, "\n");                                      \
      std::exit(1);                                                    \
    }                                                                  \
  } while (0)

// ---------------------------------------------------------------------------
// Fixture: mediated schema, one training source, and three target-schema
// variants so key-pure learner faults hit different learners per variant.
// ---------------------------------------------------------------------------

const char* kMediatedDtd = R"(
  <!ELEMENT HOUSE (ADDRESS, DESCRIPTION, CONTACT-INFO)>
  <!ELEMENT ADDRESS (#PCDATA)>
  <!ELEMENT DESCRIPTION (#PCDATA)>
  <!ELEMENT CONTACT-INFO (AGENT-NAME, AGENT-PHONE)>
  <!ELEMENT AGENT-NAME (#PCDATA)>
  <!ELEMENT AGENT-PHONE (#PCDATA)>
)";

struct SchemaVariant {
  const char* dtd;
  const char* tags[6];  // root, address, description, contact, name, phone
};

const SchemaVariant kVariants[] = {
    {"<!ELEMENT home (area, extra-info, reach)>"
     "<!ELEMENT area (#PCDATA)><!ELEMENT extra-info (#PCDATA)>"
     "<!ELEMENT reach (realtor, work-phone)>"
     "<!ELEMENT realtor (#PCDATA)><!ELEMENT work-phone (#PCDATA)>",
     {"home", "area", "extra-info", "reach", "realtor", "work-phone"}},
    {"<!ELEMENT casa (location, blurb, agent)>"
     "<!ELEMENT location (#PCDATA)><!ELEMENT blurb (#PCDATA)>"
     "<!ELEMENT agent (contact-name, contact-phone)>"
     "<!ELEMENT contact-name (#PCDATA)><!ELEMENT contact-phone (#PCDATA)>",
     {"casa", "location", "blurb", "agent", "contact-name", "contact-phone"}},
    {"<!ELEMENT property (addr, remarks, seller)>"
     "<!ELEMENT addr (#PCDATA)><!ELEMENT remarks (#PCDATA)>"
     "<!ELEMENT seller (seller-name, seller-phone)>"
     "<!ELEMENT seller-name (#PCDATA)><!ELEMENT seller-phone (#PCDATA)>",
     {"property", "addr", "remarks", "seller", "seller-name",
      "seller-phone"}},
};
constexpr size_t kVariantCount = sizeof(kVariants) / sizeof(kVariants[0]);

ServiceRequest MakeRequest(const std::string& id, size_t schema_variant,
                           size_t content_variant) {
  static const char* kCities[] = {"Miami, FL", "Boston, MA", "Seattle, WA",
                                  "Austin, TX"};
  static const char* kDescs[] = {"Fantastic house great location",
                                 "Beautiful home spacious yard",
                                 "Great views close to river",
                                 "Charming cottage near schools"};
  static const char* kNames[] = {"Kate Richardson", "Mike Smith",
                                 "Jane Kendall", "Matt Brown"};
  const SchemaVariant& schema = kVariants[schema_variant % kVariantCount];
  const auto& t = schema.tags;
  ServiceRequest request;
  request.id = id;
  request.dtd_text = schema.dtd;
  std::string xml = std::string("<listings>");
  for (size_t i = 0; i < 4; ++i) {
    size_t v = (content_variant + i) % 4;
    xml += std::string("<") + t[0] + ">" +                              //
           "<" + t[1] + ">" + kCities[v] + "</" + t[1] + ">" +          //
           "<" + t[2] + ">" + kDescs[v] + "</" + t[2] + ">" +           //
           "<" + t[3] + "><" + t[4] + ">" + kNames[v] + "</" + t[4] +   //
           "><" + t[5] + ">(555) 444 " + std::to_string(3000 + 11 * i) +
           "</" + t[5] + "></" + t[3] + ">" +                           //
           "</" + t[0] + ">";
  }
  xml += "</listings>";
  request.xml_text = std::move(xml);
  return request;
}

class Fixture {
 public:
  Fixture() {
    mediated_ = ParseDtd(kMediatedDtd).value();
    source_a_ = MakeTrainingSource();
    gold_a_.Set("house-listing", "HOUSE");
    gold_a_.Set("location", "ADDRESS");
    gold_a_.Set("comments", "DESCRIPTION");
    gold_a_.Set("contact", "CONTACT-INFO");
    gold_a_.Set("name", "AGENT-NAME");
    gold_a_.Set("phone", "AGENT-PHONE");
  }

  MatchService::ReplicaFactory Factory() {
    return [this]() -> StatusOr<std::unique_ptr<LsdSystem>> {
      auto system = std::make_unique<LsdSystem>(mediated_, LsdConfig());
      LSD_RETURN_IF_ERROR(system->AddTrainingSource(source_a_, gold_a_));
      LSD_RETURN_IF_ERROR(system->Train());
      return StatusOr<std::unique_ptr<LsdSystem>>(std::move(system));
    };
  }

  /// A deliberately different model: the text-field gold labels are
  /// swapped, so this generation's outputs cannot match Factory()'s.
  MatchService::ReplicaFactory DivergentFactory() {
    return [this]() -> StatusOr<std::unique_ptr<LsdSystem>> {
      Mapping inverted = gold_a_;
      inverted.Set("location", "DESCRIPTION");
      inverted.Set("comments", "ADDRESS");
      auto system = std::make_unique<LsdSystem>(mediated_, LsdConfig());
      LSD_RETURN_IF_ERROR(system->AddTrainingSource(source_a_, inverted));
      LSD_RETURN_IF_ERROR(system->Train());
      return StatusOr<std::unique_ptr<LsdSystem>>(std::move(system));
    };
  }

 private:
  static DataSource MakeTrainingSource() {
    static const char* kCities[] = {"Miami, FL", "Boston, MA", "Seattle, WA",
                                    "Austin, TX"};
    static const char* kDescs[] = {"Fantastic house great location",
                                   "Beautiful home spacious yard",
                                   "Great views close to river",
                                   "Charming cottage near schools"};
    static const char* kNames[] = {"Kate Richardson", "Mike Smith",
                                   "Jane Kendall", "Matt Brown"};
    DataSource source;
    source.name = "train.com";
    source.schema = ParseDtd(
        "<!ELEMENT house-listing (location, comments, contact)>"
        "<!ELEMENT location (#PCDATA)><!ELEMENT comments (#PCDATA)>"
        "<!ELEMENT contact (name, phone)>"
        "<!ELEMENT name (#PCDATA)><!ELEMENT phone (#PCDATA)>").value();
    for (size_t i = 0; i < 12; ++i) {
      std::string xml =
          std::string("<house-listing><location>") + kCities[i % 4] +
          "</location><comments>" + kDescs[i % 4] +
          "</comments><contact><name>" + kNames[i % 4] +
          "</name><phone>(555) 321 " + std::to_string(1000 + 7 * i) +
          "</phone></contact></house-listing>";
      source.listings.push_back(ParseXml(xml).value());
    }
    return source;
  }

  Dtd mediated_;
  DataSource source_a_;
  Mapping gold_a_;
};

/// Holds every request whose id starts with `prefix` until Open().
class PrefixGate {
 public:
  explicit PrefixGate(std::string prefix) : prefix_(std::move(prefix)) {}

  void operator()(const ServiceRequest& request) {
    if (request.id.rfind(prefix_, 0) != 0) return;
    std::unique_lock<std::mutex> lock(mu_);
    ++arrived_;
    cv_.notify_all();
    cv_.wait(lock, [this] { return open_; });
  }

  void AwaitArrivals(size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return arrived_ >= n; });
  }

  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  const std::string prefix_;
  std::mutex mu_;
  std::condition_variable cv_;
  size_t arrived_ = 0;
  bool open_ = false;
};

/// One per-request record for cross-worker-count comparison: worker count
/// must never change any of this.
std::string Record(const ServiceResponse& r) {
  std::string record = std::string(RequestOutcomeName(r.outcome)) +
                       "|attempts=" + std::to_string(r.attempts) +
                       "|retries=" + std::to_string(r.retries);
  if (r.status.ok()) {
    record += "|" + r.fingerprint;
  } else {
    record += std::string("|") + StatusCodeToString(r.status.code());
  }
  return record;
}

using RecordMap = std::map<std::string, std::string>;

// ---------------------------------------------------------------------------
// Phases. Each appends id -> record into `records`.
// ---------------------------------------------------------------------------

void NoOverrun(const ServiceResponse& r) {
  SOAK_CHECK(!r.deadline_overrun, "request %s outlived deadline+grace",
             r.id.c_str());
}

MatchServiceOptions BaseOptions(size_t workers) {
  MatchServiceOptions options;
  options.workers = workers;
  options.max_queue_depth = 64;
  options.breaker.failure_threshold = 0;  // phases enable it explicitly
  options.sleep_millis = [](int64_t) {};  // retries never really sleep
  return options;
}

void PhaseA_Healthy(Fixture& fixture, size_t workers, size_t waves,
                    RecordMap* records) {
  auto service = MatchService::Create(fixture.Factory(), BaseOptions(workers));
  SOAK_CHECK(service.ok(), "create: %s", service.status().ToString().c_str());
  std::vector<std::future<ServiceResponse>> futures;
  for (size_t i = 0; i < waves; ++i) {
    futures.push_back((*service)->Submit(
        MakeRequest("a-" + std::to_string(i), i % kVariantCount, i % 4)));
  }
  for (auto& future : futures) {
    ServiceResponse r = future.get();
    SOAK_CHECK(r.outcome == RequestOutcome::kOk, "%s: %s", r.id.c_str(),
               r.status.ToString().c_str());
    SOAK_CHECK(r.attempts == 1, "%s took %zu attempts", r.id.c_str(),
               r.attempts);
    NoOverrun(r);
    (*records)["A/" + r.id] = Record(r);
  }
  MatchService::Stats stats = (*service)->stats();
  SOAK_CHECK(stats.ok == waves && stats.shed == 0, "A stats skewed");
  SOAK_CHECK(stats.deadline_overruns == 0, "A overruns");
}

void PhaseB_GatedOverload(Fixture& fixture, size_t workers,
                          RecordMap* records) {
  auto gate = std::make_shared<PrefixGate>("f-");
  MatchServiceOptions options = BaseOptions(workers);
  // Fixed sizes (not scaled by worker count) so the request-id set — and
  // therefore the cross-worker-count comparison map — is identical for
  // every run. depth > 8 guarantees overload even with the largest fleet.
  const size_t depth = 18;
  const size_t overflow = 7;
  options.max_queue_depth = depth;
  options.execute_interceptor = [gate](const ServiceRequest& r) {
    (*gate)(r);
  };
  auto service = MatchService::Create(fixture.Factory(), options);
  SOAK_CHECK(service.ok(), "create: %s", service.status().ToString().c_str());

  // Fill to the depth limit. None can finish while the gate is closed, so
  // queued + executing == depth when the overflow arrives — regardless of
  // how many workers have picked work up yet.
  std::vector<std::future<ServiceResponse>> admitted;
  for (size_t i = 0; i < depth; ++i) {
    admitted.push_back((*service)->Submit(
        MakeRequest("f-" + std::to_string(i), i % kVariantCount, i % 4)));
  }
  // Every overflow submission must shed immediately: kUnavailable, zero
  // attempts, resolved without waiting for the gate.
  for (size_t i = 0; i < overflow; ++i) {
    ServiceResponse shed =
        (*service)->Submit(MakeRequest("o-" + std::to_string(i), 0, 0)).get();
    SOAK_CHECK(shed.outcome == RequestOutcome::kShed, "%s admitted past cap",
               shed.id.c_str());
    SOAK_CHECK(shed.status.code() == StatusCode::kUnavailable,
               "%s shed with %s", shed.id.c_str(),
               shed.status.ToString().c_str());
    SOAK_CHECK(shed.attempts == 0, "%s executed after shed", shed.id.c_str());
    (*records)["B/" + shed.id] = Record(shed);
  }

  gate->Open();
  for (auto& future : admitted) {
    ServiceResponse r = future.get();  // terminal outcome for every admit
    SOAK_CHECK(r.outcome == RequestOutcome::kOk, "%s: %s", r.id.c_str(),
               r.status.ToString().c_str());
    NoOverrun(r);
    (*records)["B/" + r.id] = Record(r);
  }
  MatchService::Stats stats = (*service)->stats();
  SOAK_CHECK(stats.admitted == depth, "B admitted %llu != %zu",
             (unsigned long long)stats.admitted, depth);
  SOAK_CHECK(stats.shed == overflow, "B shed %llu != %zu",
             (unsigned long long)stats.shed, overflow);
  SOAK_CHECK(stats.ok + stats.degraded + stats.failed == stats.admitted,
             "B: admitted request without terminal outcome");
}

void PhaseC_Chaos(Fixture& fixture, size_t workers, size_t waves,
                  RecordMap* records) {
  FaultInjector injector(/*seed=*/77);
  // Key-pure learner chaos: whether a (learner, tag) predict call fails
  // depends only on the key, so each schema variant loses the same
  // learners on every run and worker count.
  injector.FailWithProbability(FaultSite::kLearnerPredict, 0.10,
                               Status::Internal("chaotic learner"));
  // "-T" requests take a transient execution fault: attempt 0 fails, the
  // backoff retry succeeds.
  injector.FailMatching(FaultSite::kServiceExec, "-T/attempt-0",
                        Status::Internal("transient exec fault"));
  // "-P" requests fail persistently: every attempt dies.
  injector.FailMatching(FaultSite::kServiceExec, "-P/attempt",
                        Status::Internal("persistent exec fault"));
  ScopedFaultInjection scoped(&injector);

  MatchServiceOptions options = BaseOptions(workers);
  options.backoff.max_retries = 2;
  auto service = MatchService::Create(fixture.Factory(), options);
  SOAK_CHECK(service.ok(), "create: %s", service.status().ToString().c_str());

  std::vector<std::future<ServiceResponse>> futures;
  for (size_t i = 0; i < waves; ++i) {
    std::string kind;
    switch (i % 5) {
      case 1: kind = "-T"; break;  // transient exec fault
      case 3: kind = "-P"; break;  // persistent exec fault
      case 4: kind = "-X"; break;  // corrupt payload
      default: kind = "-H"; break; // healthy
    }
    ServiceRequest request = MakeRequest("c" + std::to_string(i) + kind,
                                         i % kVariantCount, i % 4);
    if (kind == "-X") request.xml_text += "<torn><tail";
    futures.push_back((*service)->Submit(std::move(request)));
  }
  for (auto& future : futures) {
    ServiceResponse r = future.get();
    NoOverrun(r);
    const std::string& id = r.id;
    bool transient = id.find("-T") != std::string::npos;
    bool persistent = id.find("-P") != std::string::npos;
    bool corrupt = id.find("-X") != std::string::npos;
    if (persistent) {
      SOAK_CHECK(r.outcome == RequestOutcome::kFailed, "%s survived -P",
                 id.c_str());
      SOAK_CHECK(r.attempts == 3 && r.retries == 2,
                 "%s attempts=%zu retries=%zu", id.c_str(), r.attempts,
                 r.retries);
    } else if (transient) {
      // One retry heals the exec fault; learner chaos may still degrade
      // (or, for an unlucky variant, fail) the match itself.
      SOAK_CHECK(r.attempts == 2 && r.retries == 1,
                 "%s attempts=%zu retries=%zu", id.c_str(), r.attempts,
                 r.retries);
    } else if (corrupt) {
      SOAK_CHECK(r.outcome != RequestOutcome::kShed, "%s shed", id.c_str());
    }
    (*records)["C/" + id] = Record(r);
  }
  MatchService::Stats stats = (*service)->stats();
  SOAK_CHECK(stats.ok + stats.degraded + stats.failed == stats.admitted,
             "C: admitted request without terminal outcome");
  SOAK_CHECK(stats.deadline_overruns == 0, "C overruns");
}

void PhaseD_BreakerLifecycle(Fixture& fixture, size_t workers,
                             RecordMap* records) {
  MatchServiceOptions options = BaseOptions(workers);
  options.breaker.failure_threshold = 2;
  options.breaker.open_skips = 2;
  auto service = MatchService::Create(fixture.Factory(), options);
  SOAK_CHECK(service.ok(), "create: %s", service.status().ToString().c_str());

  // Requests are serialized through Process(), so the breaker sees a total
  // order and its transitions are identical for every worker count.
  auto run = [&](const char* id) {
    ServiceResponse r =
        (*service)->Process(MakeRequest(id, /*schema=*/0, /*content=*/0));
    NoOverrun(r);
    (*records)[std::string("D/") + id] = Record(r);
    return r;
  };

  std::string paid_fingerprint;
  {
    FaultInjector injector;
    injector.FailMatching(FaultSite::kLearnerPredict, kNaiveBayesName,
                          Status::Internal("learner down"));
    ScopedFaultInjection scoped(&injector);

    ServiceResponse paid1 = run("d-paid1");
    SOAK_CHECK(paid1.outcome == RequestOutcome::kDegraded &&
                   !paid1.breaker_skipped,
               "d-paid1 %s", RequestOutcomeName(paid1.outcome));
    ServiceResponse paid2 = run("d-paid2");
    SOAK_CHECK((*service)->breaker_state(kNaiveBayesName) ==
                   BreakerState::kOpen,
               "breaker closed after %llu paid failures",
               (unsigned long long)2);
    paid_fingerprint = paid2.fingerprint;

    // Open: the skip serves renormalized without paying, byte-identical
    // to the paid-failure mapping.
    ServiceResponse skipped = run("d-skip1");
    SOAK_CHECK(skipped.breaker_skipped, "d-skip1 paid");
    SOAK_CHECK(skipped.fingerprint == paid_fingerprint,
               "skip bytes != paid bytes");

    // Skip budget spent: the probe runs the learner, still faulty, reopen.
    ServiceResponse probe = run("d-probe1");
    SOAK_CHECK(!probe.breaker_skipped, "d-probe1 skipped");
    SOAK_CHECK((*service)->breaker_state(kNaiveBayesName) ==
                   BreakerState::kOpen,
               "failed probe left breaker %s",
               BreakerStateName((*service)->breaker_state(kNaiveBayesName)));
  }

  // Fault cleared: one more skip, then the probe succeeds and closes.
  ServiceResponse skip2 = run("d-skip2");
  SOAK_CHECK(skip2.breaker_skipped, "d-skip2 paid");
  SOAK_CHECK(skip2.fingerprint == paid_fingerprint,
             "post-fault skip bytes diverged");
  ServiceResponse probe2 = run("d-probe2");
  SOAK_CHECK(!probe2.breaker_skipped && probe2.outcome == RequestOutcome::kOk,
             "recovery probe %s", RequestOutcomeName(probe2.outcome));
  SOAK_CHECK(
      (*service)->breaker_state(kNaiveBayesName) == BreakerState::kClosed,
      "breaker did not close after healthy probe");
  ServiceResponse healthy = run("d-clean");
  SOAK_CHECK(healthy.outcome == RequestOutcome::kOk && !healthy.breaker_skipped,
             "post-recovery request degraded");
  SOAK_CHECK((*service)->stats().breaker_open_transitions == 2,
             "expected exactly 2 open transitions, got %llu",
             (unsigned long long)(*service)->stats().breaker_open_transitions);
}

void PhaseE_Deadlines(Fixture& fixture, size_t workers, RecordMap* records) {
  MatchServiceOptions options = BaseOptions(workers);
  options.grace_ms = 60000;
  auto service = MatchService::Create(fixture.Factory(), options);
  SOAK_CHECK(service.ok(), "create: %s", service.status().ToString().c_str());
  for (size_t i = 0; i < kVariantCount; ++i) {
    ServiceRequest request =
        MakeRequest("e-" + std::to_string(i), i, /*content=*/i);
    request.deadline_ms = 0;  // expired on arrival: anytime path, always
    ServiceResponse r = (*service)->Process(std::move(request));
    SOAK_CHECK(r.outcome == RequestOutcome::kDegraded,
               "%s with expired budget: %s (%s)", r.id.c_str(),
               RequestOutcomeName(r.outcome), r.status.ToString().c_str());
    SOAK_CHECK(r.report.deadline_hit, "%s missing deadline_hit",
               r.id.c_str());
    NoOverrun(r);
    (*records)["E/" + r.id] = Record(r);
  }
  SOAK_CHECK((*service)->stats().deadline_overruns == 0, "E overruns");
}

void PhaseF_CacheParity(Fixture& fixture, size_t workers, size_t waves,
                        RecordMap* records) {
  // Two identical services — one with the prediction cache disabled, one
  // with it on — see the same two waves of traffic. The second wave is
  // warm for the cached service, so it exercises the hit path end to end.
  // The cache may only change when prediction work happens, never what a
  // response contains, so every record must match byte for byte.
  MatchServiceOptions off_options = BaseOptions(workers);
  off_options.pred_cache_entries = 0;
  MatchServiceOptions on_options = BaseOptions(workers);
  on_options.pred_cache_entries = 4096;
  auto off = MatchService::Create(fixture.Factory(), off_options);
  auto on = MatchService::Create(fixture.Factory(), on_options);
  SOAK_CHECK(off.ok(), "create: %s", off.status().ToString().c_str());
  SOAK_CHECK(on.ok(), "create: %s", on.status().ToString().c_str());

  auto drive = [&](MatchService* service) {
    RecordMap out;
    for (const char* pass : {"cold", "warm"}) {
      std::vector<std::future<ServiceResponse>> futures;
      for (size_t i = 0; i < waves; ++i) {
        futures.push_back((*service).Submit(
            MakeRequest(std::string("fc-") + pass + "-" + std::to_string(i),
                        i % kVariantCount, i % 4)));
      }
      for (auto& future : futures) {
        ServiceResponse r = future.get();
        SOAK_CHECK(r.outcome == RequestOutcome::kOk, "%s: %s", r.id.c_str(),
                   r.status.ToString().c_str());
        NoOverrun(r);
        out["F/" + r.id] = Record(r);
      }
    }
    return out;
  };

  RecordMap off_records = drive((*off).get());
  RecordMap on_records = drive((*on).get());
  SOAK_CHECK(off_records.size() == on_records.size(),
             "F request sets diverged");
  for (const auto& [id, record] : off_records) {
    auto it = on_records.find(id);
    SOAK_CHECK(it != on_records.end(), "%s missing from cache-on run",
               id.c_str());
    SOAK_CHECK(record == it->second,
               "%s: cache changed the bytes:\n  off: %s\n  on:  %s",
               id.c_str(), record.c_str(), it->second.c_str());
    (*records)[id] = record;
  }

  MatchService::Stats off_stats = (*off)->stats();
  MatchService::Stats on_stats = (*on)->stats();
  SOAK_CHECK(off_stats.pred_cache_hits == 0 && off_stats.pred_cache_misses == 0,
             "cache-off service recorded cache traffic");
  SOAK_CHECK(on_stats.pred_cache_hits > 0,
             "warm wave produced no cache hits (misses=%llu)",
             (unsigned long long)on_stats.pred_cache_misses);
  SOAK_CHECK(on_stats.pred_cache_misses > 0, "cold wave never missed");
}

/// Options with a golden request set, so reloads shadow-validate.
MatchServiceOptions GoldenOptions(size_t workers) {
  MatchServiceOptions options = BaseOptions(workers);
  options.golden_requests.push_back(MakeRequest("golden-0", 0, 0));
  options.golden_requests.push_back(MakeRequest("golden-1", 1, 1));
  return options;
}

void PhaseG_ModelLifecycle(Fixture& fixture, size_t workers,
                           RecordMap* records) {
  // G1: hot swap of an identically trained model while the service is
  // under gated load. Every worker is parked mid-execution when the swap
  // publishes, a backlog is queued behind them, and nothing is ever shed
  // or failed on account of the swap. Each response is attributable to
  // exactly one version: the parked requests finish on the old one, the
  // backlog adopts the new one at its request boundary. Fingerprints are
  // version-independent here (same training data), so the records stay
  // comparable across worker counts even though version attribution
  // depends on scheduling.
  {
    auto gate = std::make_shared<PrefixGate>("g1h-");
    MatchServiceOptions options = GoldenOptions(workers);
    options.execute_interceptor = [gate](const ServiceRequest& r) {
      (*gate)(r);
    };
    auto service = MatchService::Create(fixture.Factory(), options);
    SOAK_CHECK(service.ok(), "create: %s",
               service.status().ToString().c_str());
    const size_t held = 8;    // >= the largest worker fleet
    const size_t queued = 8;  // fixed, so the record set never varies
    std::vector<std::future<ServiceResponse>> futures;
    for (size_t i = 0; i < held; ++i) {
      futures.push_back((*service)->Submit(MakeRequest(
          "g1h-" + std::to_string(i), i % kVariantCount, i % 4)));
    }
    // The pool collapses to one executor when the hardware has fewer
    // cores than the fleet (single-core CI), so wait only for as many
    // parked workers as can physically execute at once.
    const size_t executors = std::max<size_t>(
        1, std::min<size_t>(workers, std::thread::hardware_concurrency()));
    gate->AwaitArrivals(std::min(executors, held));
    for (size_t i = 0; i < queued; ++i) {
      futures.push_back((*service)->Submit(MakeRequest(
          "g1q-" + std::to_string(i), i % kVariantCount, i % 4)));
    }

    MatchService::ReloadOptions reload;
    reload.factory = fixture.Factory();
    auto report = (*service)->Reload(std::move(reload));
    SOAK_CHECK(report.ok(), "G1 reload: %s",
               report.status().ToString().c_str());
    SOAK_CHECK(report->swapped, "G1 identical candidate rejected: %s",
               report->rejection.c_str());
    SOAK_CHECK(report->model_version == 2, "G1 version %llu",
               (unsigned long long)report->model_version);
    SOAK_CHECK(report->golden_matched == report->golden_total,
               "G1 golden %zu/%zu", report->golden_matched,
               report->golden_total);

    gate->Open();
    for (auto& future : futures) {
      ServiceResponse r = future.get();
      SOAK_CHECK(r.outcome == RequestOutcome::kOk,
                 "%s %s during hot swap: %s", r.id.c_str(),
                 RequestOutcomeName(r.outcome), r.status.ToString().c_str());
      SOAK_CHECK(r.model_version == 1 || r.model_version == 2,
                 "%s attributed to version %llu", r.id.c_str(),
                 (unsigned long long)r.model_version);
      NoOverrun(r);
      (*records)["G1/" + r.id] = Record(r);
    }
    MatchService::Stats stats = (*service)->stats();
    SOAK_CHECK(stats.shed == 0 && stats.failed == 0,
               "G1 swap-attributable damage: shed=%llu failed=%llu",
               (unsigned long long)stats.shed,
               (unsigned long long)stats.failed);
    SOAK_CHECK(stats.reloads == 1 && stats.model_version == 2,
               "G1 stats reloads=%llu version=%llu",
               (unsigned long long)stats.reloads,
               (unsigned long long)stats.model_version);
  }

  // G2: an intentionally retrained (divergent) model swapped in under the
  // accuracy-floor gate, through the always-on shared prediction cache.
  // The new generation's outputs must differ from the old one's on the
  // same request bytes — stale cache entries crossing the swap would
  // reproduce the old scores, so this doubles as the cross-version cache
  // isolation check.
  {
    auto service = MatchService::Create(fixture.Factory(),
                                        GoldenOptions(workers));
    SOAK_CHECK(service.ok(), "create: %s",
               service.status().ToString().c_str());
    std::vector<std::string> pre_fingerprints;
    for (size_t i = 0; i < kVariantCount; ++i) {
      ServiceResponse r = (*service)->Process(
          MakeRequest("g2-pre-" + std::to_string(i), i, i));
      SOAK_CHECK(r.outcome == RequestOutcome::kOk, "%s: %s", r.id.c_str(),
                 r.status.ToString().c_str());
      pre_fingerprints.push_back(r.fingerprint);
      (*records)["G2/" + r.id] = Record(r);
    }
    MatchService::ReloadOptions reload;
    reload.factory = fixture.DivergentFactory();
    reload.require_identical = false;
    reload.min_accuracy = 0.0;
    auto report = (*service)->Reload(std::move(reload));
    SOAK_CHECK(report.ok() && report->swapped, "G2 floor reload not adopted");
    for (size_t i = 0; i < kVariantCount; ++i) {
      ServiceResponse r = (*service)->Process(
          MakeRequest("g2-post-" + std::to_string(i), i, i));
      SOAK_CHECK(r.outcome == RequestOutcome::kOk, "%s: %s", r.id.c_str(),
                 r.status.ToString().c_str());
      SOAK_CHECK(r.model_version == 2, "%s on version %llu", r.id.c_str(),
                 (unsigned long long)r.model_version);
      SOAK_CHECK(r.fingerprint != pre_fingerprints[i],
                 "%s reproduced the old generation's bytes — stale "
                 "cross-version cache read",
                 r.id.c_str());
      (*records)["G2/" + r.id] = Record(r);
    }
  }

  // G3: every non-adoption path leaves serving untouched — shadow
  // rejection of a divergent candidate, an injected publication fault,
  // and an injected shadow-eval fault.
  {
    auto service = MatchService::Create(fixture.Factory(),
                                        GoldenOptions(workers));
    SOAK_CHECK(service.ok(), "create: %s",
               service.status().ToString().c_str());
    ServiceResponse base = (*service)->Process(MakeRequest("g3-base", 0, 0));
    SOAK_CHECK(base.outcome == RequestOutcome::kOk, "g3-base: %s",
               base.status.ToString().c_str());
    (*records)["G3/" + base.id] = Record(base);

    MatchService::ReloadOptions divergent;
    divergent.factory = fixture.DivergentFactory();
    auto rejected = (*service)->Reload(std::move(divergent));
    SOAK_CHECK(rejected.ok() && !rejected->swapped,
               "G3 divergent candidate not rejected");
    {
      FaultInjector injector;
      injector.FailMatching(FaultSite::kModelSwap, "swap/",
                            Status::Internal("injected publication fault"));
      ScopedFaultInjection scoped(&injector);
      MatchService::ReloadOptions aborted;
      aborted.factory = fixture.Factory();
      auto outcome = (*service)->Reload(std::move(aborted));
      SOAK_CHECK(!outcome.ok(), "G3 swap fault did not abort the reload");
    }
    {
      FaultInjector injector;
      injector.FailMatching(FaultSite::kShadowEval, "golden-0",
                            Status::Internal("injected shadow-eval fault"));
      ScopedFaultInjection scoped(&injector);
      MatchService::ReloadOptions shadow;
      shadow.factory = fixture.Factory();
      auto outcome = (*service)->Reload(std::move(shadow));
      SOAK_CHECK(outcome.ok() && !outcome->swapped,
                 "G3 shadow-eval fault did not reject the candidate");
    }
    SOAK_CHECK((*service)->model_version() == 1,
               "G3 serving version moved to %llu",
               (unsigned long long)(*service)->model_version());
    ServiceResponse after = (*service)->Process(MakeRequest("g3-after", 0, 0));
    SOAK_CHECK(after.outcome == RequestOutcome::kOk &&
                   after.fingerprint == base.fingerprint,
               "G3 serving outputs changed without an adopted swap");
    (*records)["G3/" + after.id] = Record(after);
    MatchService::Stats stats = (*service)->stats();
    SOAK_CHECK(stats.reloads == 0 && stats.reload_rejections == 2,
               "G3 stats reloads=%llu rejections=%llu",
               (unsigned long long)stats.reloads,
               (unsigned long long)stats.reload_rejections);
  }

  // G4: post-swap regression -> automatic rollback within the probation
  // window. The regressed version's failures (and only its own) breach
  // the threshold; the previous generation returns under a fresh epoch
  // with byte-identical outputs.
  {
    MatchServiceOptions options = GoldenOptions(workers);
    options.backoff.max_retries = 0;
    auto service = MatchService::Create(fixture.Factory(), options);
    SOAK_CHECK(service.ok(), "create: %s",
               service.status().ToString().c_str());
    ServiceResponse base = (*service)->Process(MakeRequest("g4-base", 0, 0));
    SOAK_CHECK(base.outcome == RequestOutcome::kOk, "g4-base: %s",
               base.status.ToString().c_str());
    (*records)["G4/" + base.id] = Record(base);

    MatchService::ReloadOptions reload;
    reload.factory = fixture.Factory();
    reload.probation_requests = 6;
    reload.probation_max_failures = 0;
    auto report = (*service)->Reload(std::move(reload));
    SOAK_CHECK(report.ok() && report->swapped, "G4 swap not adopted");
    SOAK_CHECK(report->model_version == 2, "G4 version %llu",
               (unsigned long long)report->model_version);
    {
      FaultInjector injector;
      injector.FailMatching(FaultSite::kServiceExec, "g4-bad/",
                            Status::Internal("post-swap regression"));
      ScopedFaultInjection scoped(&injector);
      ServiceResponse bad = (*service)->Process(MakeRequest("g4-bad", 1, 1));
      SOAK_CHECK(bad.outcome == RequestOutcome::kFailed &&
                     bad.model_version == 2,
                 "g4-bad %s on version %llu",
                 RequestOutcomeName(bad.outcome),
                 (unsigned long long)bad.model_version);
      (*records)["G4/" + bad.id] = Record(bad);
    }
    MatchService::Stats stats = (*service)->stats();
    SOAK_CHECK(stats.rollbacks == 1, "G4 rollbacks=%llu",
               (unsigned long long)stats.rollbacks);
    SOAK_CHECK((*service)->model_version() == 3,
               "G4 post-rollback version %llu",
               (unsigned long long)(*service)->model_version());
    ServiceResponse restored =
        (*service)->Process(MakeRequest("g4-restored", 0, 0));
    SOAK_CHECK(restored.outcome == RequestOutcome::kOk &&
                   restored.model_version == 3 &&
                   restored.fingerprint == base.fingerprint,
               "G4 rollback did not restore the last-good outputs");
    (*records)["G4/" + restored.id] = Record(restored);
  }
}

void PhaseH_SubmitStopRace(Fixture& fixture, size_t workers) {
  // Real thread chaos on purpose: several submitters race one Stop().
  // The invariant is liveness plus taxonomy — every future resolves as
  // executed-before-drain or shed-with-kUnavailable — so this phase
  // records nothing for the cross-worker-count comparison.
  auto service = MatchService::Create(fixture.Factory(),
                                      BaseOptions(workers));
  SOAK_CHECK(service.ok(), "create: %s", service.status().ToString().c_str());
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 6;
  std::vector<std::future<ServiceResponse>> futures[kThreads];
  std::vector<std::thread> submitters;
  std::atomic<size_t> started{0};
  for (size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      started.fetch_add(1);
      for (size_t i = 0; i < kPerThread; ++i) {
        futures[t].push_back((*service)->Submit(MakeRequest(
            "h-" + std::to_string(t) + "-" + std::to_string(i),
            i % kVariantCount, i % 4)));
      }
    });
  }
  while (started.load() < kThreads) std::this_thread::yield();
  (*service)->Stop();
  for (std::thread& thread : submitters) thread.join();
  for (size_t t = 0; t < kThreads; ++t) {
    for (std::future<ServiceResponse>& future : futures[t]) {
      SOAK_CHECK(future.wait_for(std::chrono::seconds(60)) ==
                     std::future_status::ready,
                 "a submission racing Stop() never resolved its future");
      ServiceResponse r = future.get();
      if (r.outcome == RequestOutcome::kShed) {
        SOAK_CHECK(r.status.code() == StatusCode::kUnavailable,
                   "%s shed with %s", r.id.c_str(),
                   r.status.ToString().c_str());
      } else {
        SOAK_CHECK(r.outcome != RequestOutcome::kFailed, "%s failed: %s",
                   r.id.c_str(), r.status.ToString().c_str());
      }
    }
  }
}

RecordMap RunAllPhases(Fixture& fixture, size_t workers, size_t waves) {
  RecordMap records;
  PhaseA_Healthy(fixture, workers, waves, &records);
  PhaseB_GatedOverload(fixture, workers, &records);
  PhaseC_Chaos(fixture, workers, waves, &records);
  PhaseD_BreakerLifecycle(fixture, workers, &records);
  PhaseE_Deadlines(fixture, workers, &records);
  PhaseF_CacheParity(fixture, workers, waves, &records);
  PhaseG_ModelLifecycle(fixture, workers, &records);
  PhaseH_SubmitStopRace(fixture, workers);
  return records;
}

int Run(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const size_t waves = quick ? 10 : 40;

  Fixture fixture;
  RecordMap baseline;
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    std::printf("service_soak: workers=%zu waves=%zu ...\n", workers, waves);
    std::fflush(stdout);
    RecordMap records = RunAllPhases(fixture, workers, waves);
    if (workers == 1) {
      baseline = std::move(records);
      continue;
    }
    SOAK_CHECK(records.size() == baseline.size(),
               "request set diverged: %zu vs %zu records", records.size(),
               baseline.size());
    for (const auto& [id, record] : records) {
      auto it = baseline.find(id);
      SOAK_CHECK(it != baseline.end(), "%s missing from baseline",
                 id.c_str());
      SOAK_CHECK(record == it->second,
                 "%s diverged at %zu workers:\n  1: %s\n  %zu: %s",
                 id.c_str(), workers, it->second.c_str(), workers,
                 record.c_str());
    }
  }
  std::printf(
      "service_soak: PASS (%zu per-request records bit-identical at "
      "1/2/4/8 workers)\n",
      baseline.size());
  return 0;
}

}  // namespace
}  // namespace lsd

int main(int argc, char** argv) { return lsd::Run(argc, argv); }
