#include "gtest/gtest.h"
#include "schema/extraction.h"
#include "schema/schema.h"
#include "xml/dtd_parser.h"
#include "xml/xml_parser.h"

namespace lsd {
namespace {

DataSource MakeTestSource() {
  DataSource source;
  source.name = "test.example.com";
  source.schema = ParseDtd(R"(
    <!ELEMENT listing (location, price, contact)>
    <!ELEMENT location (#PCDATA)>
    <!ELEMENT price (#PCDATA)>
    <!ELEMENT contact (name, phone)>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT phone (#PCDATA)>
  )").value();
  source.listings.push_back(ParseXml(R"(
    <listing><location>Miami, FL</location><price>$100</price>
      <contact><name>Kate</name><phone>(305) 111 2222</phone></contact>
    </listing>)").value());
  source.listings.push_back(ParseXml(R"(
    <listing><location>Boston, MA</location><price>$200</price>
      <contact><name>Mike</name><phone>(617) 333 4444</phone></contact>
    </listing>)").value());
  return source;
}

// ---------------------------------------------------------------------------
// Mapping
// ---------------------------------------------------------------------------

TEST(MappingTest, SetFindAndOther) {
  Mapping m;
  m.Set("location", "ADDRESS");
  ASSERT_NE(m.Find("location"), nullptr);
  EXPECT_EQ(*m.Find("location"), "ADDRESS");
  EXPECT_EQ(m.Find("zzz"), nullptr);
  EXPECT_EQ(m.LabelOrOther("zzz"), "OTHER");
  EXPECT_EQ(m.LabelOrOther("location"), "ADDRESS");
}

TEST(MappingTest, OverwriteAndTagsWithLabel) {
  Mapping m;
  m.Set("a", "X");
  m.Set("b", "X");
  m.Set("a", "Y");
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.TagsWithLabel("X"), (std::vector<std::string>{"b"}));
  EXPECT_EQ(m.TagsWithLabel("Y"), (std::vector<std::string>{"a"}));
}

TEST(MappingTest, ToStringLists) {
  Mapping m;
  m.Set("a", "X");
  EXPECT_EQ(m.ToString(), "a <=> X\n");
}

// ---------------------------------------------------------------------------
// SynonymDictionary
// ---------------------------------------------------------------------------

TEST(SynonymDictionaryTest, GroupIsClique) {
  SynonymDictionary dict;
  dict.AddGroup({"phone", "telephone", "tel"});
  auto syns = dict.SynonymsOf("telephone");
  EXPECT_EQ(syns, (std::vector<std::string>{"phone", "tel"}));
  EXPECT_TRUE(dict.SynonymsOf("fax").empty());
}

TEST(SynonymDictionaryTest, OverlappingGroupsMerge) {
  SynonymDictionary dict;
  dict.AddGroup({"a", "b"});
  dict.AddGroup({"a", "c"});
  auto syns = dict.SynonymsOf("a");
  EXPECT_EQ(syns, (std::vector<std::string>{"b", "c"}));
}

TEST(SynonymDictionaryTest, ExpandKeepsOriginalsFirstAndDedupes) {
  SynonymDictionary dict;
  dict.AddGroup({"phone", "telephone"});
  auto expanded = dict.Expand({"agent", "phone", "phone"});
  EXPECT_EQ(expanded,
            (std::vector<std::string>{"agent", "phone", "telephone"}));
}

// ---------------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------------

TEST(ExtractionTest, OneColumnPerTagInSchemaOrder) {
  DataSource source = MakeTestSource();
  auto columns = ExtractColumns(source);
  ASSERT_TRUE(columns.ok());
  ASSERT_EQ(columns->size(), 6u);
  EXPECT_EQ((*columns)[0].tag, "listing");
  EXPECT_EQ((*columns)[1].tag, "location");
  EXPECT_EQ((*columns)[5].tag, "phone");
}

TEST(ExtractionTest, InstancesCarryContentPathAndListingIndex) {
  DataSource source = MakeTestSource();
  auto columns = ExtractColumns(source);
  ASSERT_TRUE(columns.ok());
  const Column& phone = (*columns)[5];
  ASSERT_EQ(phone.instances.size(), 2u);
  EXPECT_EQ(phone.instances[0].content, "(305) 111 2222");
  EXPECT_EQ(phone.instances[0].name_path, "listing contact phone");
  EXPECT_EQ(phone.instances[0].listing_index, 0);
  EXPECT_EQ(phone.instances[1].listing_index, 1);
  ASSERT_NE(phone.instances[0].node, nullptr);
  EXPECT_EQ(phone.instances[0].node->name, "phone");
}

TEST(ExtractionTest, NonLeafInstanceGetsDeepText) {
  DataSource source = MakeTestSource();
  auto columns = ExtractColumns(source);
  ASSERT_TRUE(columns.ok());
  const Column& contact = (*columns)[3];
  ASSERT_EQ(contact.instances.size(), 2u);
  EXPECT_EQ(contact.instances[0].content, "Kate (305) 111 2222");
}

TEST(ExtractionTest, MaxListingsLimitsExtraction) {
  DataSource source = MakeTestSource();
  ExtractionOptions options;
  options.max_listings = 1;
  auto columns = ExtractColumns(source, options);
  ASSERT_TRUE(columns.ok());
  EXPECT_EQ((*columns)[1].instances.size(), 1u);
}

TEST(ExtractionTest, SynonymExpansionFillsNameSynonyms) {
  DataSource source = MakeTestSource();
  SynonymDictionary dict;
  dict.AddGroup({"phone", "telephone"});
  ExtractionOptions options;
  options.synonyms = &dict;
  auto columns = ExtractColumns(source, options);
  ASSERT_TRUE(columns.ok());
  EXPECT_EQ((*columns)[5].instances[0].name_synonyms, "telephone");
  EXPECT_EQ((*columns)[1].instances[0].name_synonyms, "");
}

TEST(ExtractionTest, DeclaredButAbsentTagGetsEmptyColumn) {
  DataSource source = MakeTestSource();
  ASSERT_TRUE(source.schema
                  .AddElement({"bonus", ContentParticle::Pcdata()})
                  .ok());
  // "bonus" never appears in listings (schema would reject it anyway, so
  // skip validation by calling extraction directly).
  auto columns = ExtractColumns(source);
  // The schema no longer validates (dangling root reference is fine since
  // bonus is declared but unreferenced); extraction should still work.
  ASSERT_TRUE(columns.ok());
  bool found = false;
  for (const Column& column : *columns) {
    if (column.tag == "bonus") {
      found = true;
      EXPECT_TRUE(column.instances.empty());
    }
  }
  EXPECT_TRUE(found);
}

TEST(ExtractionTest, MakeTrainingExamplesLabelsAndSkips) {
  DataSource source = MakeTestSource();
  auto columns = ExtractColumns(source);
  ASSERT_TRUE(columns.ok());
  Mapping gold;
  gold.Set("listing", "HOUSE");
  gold.Set("location", "ADDRESS");
  gold.Set("price", "PRICE");
  gold.Set("contact", "CONTACT");
  gold.Set("name", "AGENT-NAME");
  gold.Set("phone", "AGENT-PHONE");
  LabelSpace labels(
      {"HOUSE", "ADDRESS", "PRICE", "CONTACT", "AGENT-NAME", "AGENT-PHONE"});
  auto examples = MakeTrainingExamples(*columns, gold, labels);
  EXPECT_EQ(examples.size(), 12u);  // 6 tags x 2 listings
  for (const TrainingExample& e : examples) {
    EXPECT_GE(e.label, 0);
    EXPECT_LT(e.label, static_cast<int>(labels.size()));
  }
}

TEST(ExtractionTest, UnmappedTagsBecomeOther) {
  DataSource source = MakeTestSource();
  auto columns = ExtractColumns(source);
  ASSERT_TRUE(columns.ok());
  Mapping gold;  // nothing mapped
  LabelSpace labels({"ADDRESS"});
  auto examples = MakeTrainingExamples(*columns, gold, labels);
  ASSERT_FALSE(examples.empty());
  for (const TrainingExample& e : examples) {
    EXPECT_EQ(e.label, labels.other_index());
  }
}

TEST(DataSourceTest, ValidateListingsDetectsViolation) {
  DataSource source = MakeTestSource();
  EXPECT_TRUE(source.ValidateListings().ok());
  source.listings.push_back(
      ParseXml("<listing><price>$1</price></listing>").value());
  Status status = source.ValidateListings();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("listing 2"), std::string::npos);
}

}  // namespace
}  // namespace lsd
