// Process-level tests of the lsd_generate / lsd_match command-line tools:
// generate a small benchmark to a temp directory, match one source, and
// check the emitted mapping. Binary paths are injected by CMake.

#include <sys/wait.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/file_util.h"
#include "gtest/gtest.h"
#include "schema/schema.h"

namespace lsd {
namespace {

#ifndef LSD_GENERATE_BIN
#define LSD_GENERATE_BIN "lsd_generate"
#endif
#ifndef LSD_MATCH_BIN
#define LSD_MATCH_BIN "lsd_match"
#endif
#ifndef LSD_SERVE_BIN
#define LSD_SERVE_BIN "lsd_serve"
#endif
#ifndef LSD_CLIENT_BIN
#define LSD_CLIENT_BIN "lsd_client"
#endif

std::string TempDir() {
  // Suffixed with the test name: ctest runs each test in its own process,
  // possibly concurrently, and a shared directory would be rm -rf'd under
  // a sibling mid-run.
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = ::testing::TempDir() + "/lsd_tools_" + info->name();
  std::string command = "rm -rf '" + dir + "' && mkdir -p '" + dir + "'";
  EXPECT_EQ(std::system(command.c_str()), 0);
  return dir;
}

TEST(ToolsTest, GenerateThenMatchEndToEnd) {
  std::string dir = TempDir();
  std::string generate = std::string(LSD_GENERATE_BIN) +
                         " --domain real-estate-1 --out '" + dir +
                         "' --listings 40 --seed 7 2>/dev/null";
  ASSERT_EQ(std::system(generate.c_str()), 0);

  // All expected files exist and parse.
  for (const char* name :
       {"mediated.dtd", "domain.constraints", "source-0.dtd", "source-0.xml",
        "source-0.mapping", "source-4.mapping", "README.txt"}) {
    auto contents = ReadFileToString(dir + "/" + name);
    ASSERT_TRUE(contents.ok()) << name;
    EXPECT_FALSE(contents->empty()) << name;
  }

  std::string out_mapping = dir + "/predicted.mapping";
  std::string match = std::string(LSD_MATCH_BIN) + " --mediated '" + dir +
                      "/mediated.dtd'";
  for (int s = 0; s < 3; ++s) {
    std::string base = dir + "/source-" + std::to_string(s);
    match += " --train '" + base + ".dtd' '" + base + ".xml' '" + base +
             ".mapping'";
  }
  match += " --target '" + dir + "/source-4.dtd' '" + dir + "/source-4.xml'";
  match += " --constraints '" + dir + "/domain.constraints'";
  match += " --gold '" + dir + "/source-4.mapping'";
  match += " > '" + out_mapping + "' 2>/dev/null";
  ASSERT_EQ(std::system(match.c_str()), 0);

  // The tool's stdout is a parseable mapping covering every target tag.
  auto predicted_text = ReadFileToString(out_mapping);
  ASSERT_TRUE(predicted_text.ok());
  auto predicted = ParseMapping(*predicted_text);
  ASSERT_TRUE(predicted.ok()) << predicted.status().ToString();
  auto gold_text = ReadFileToString(dir + "/source-4.mapping");
  ASSERT_TRUE(gold_text.ok());
  auto gold = ParseMapping(*gold_text);
  ASSERT_TRUE(gold.ok());
  EXPECT_EQ(predicted->size(), gold->size());
  for (const auto& [tag, label] : predicted->entries()) {
    EXPECT_NE(gold->Find(tag), nullptr) << tag;
  }
}

int RunForExitCode(const std::string& command) {
  int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(ToolsTest, ExitCodeTaxonomyForModelPersistence) {
  std::string dir = TempDir();
  std::string generate = std::string(LSD_GENERATE_BIN) +
                         " --domain real-estate-1 --out '" + dir +
                         "' --listings 40 --seed 7 2>/dev/null";
  ASSERT_EQ(std::system(generate.c_str()), 0);

  std::string model = dir + "/trained.model";
  std::string train = std::string(LSD_MATCH_BIN) + " --mediated '" + dir +
                      "/mediated.dtd'";
  for (int s = 0; s < 3; ++s) {
    std::string base = dir + "/source-" + std::to_string(s);
    train += " --train '" + base + ".dtd' '" + base + ".xml' '" + base +
             ".mapping'";
  }
  std::string target =
      " --target '" + dir + "/source-4.dtd' '" + dir + "/source-4.xml'";
  std::string quiet = " >/dev/null 2>/dev/null";

  // Clean train + save: exit 0.
  ASSERT_EQ(RunForExitCode(train + target + " --save-model '" + model + "'" +
                           quiet),
            0);
  // Clean load: exit 0; re-saving rotates a last-good generation into place.
  std::string load = std::string(LSD_MATCH_BIN) + " --mediated '" + dir +
                     "/mediated.dtd' --load-model '" + model + "'" + target;
  ASSERT_EQ(RunForExitCode(load + " --save-model '" + model + "'" + quiet), 0);
  ASSERT_TRUE(FileExists(model + ".lastgood"));

  // Corrupt the primary: the loader classifies the damage, falls back to
  // the last-good artifact, and reports the recovery as exit 3.
  auto bytes = ReadFileToString(model);
  ASSERT_TRUE(bytes.ok());
  std::string damaged = *bytes;
  damaged[damaged.size() / 2] ^= 0x04;
  ASSERT_TRUE(WriteStringToFile(model, damaged).ok());
  EXPECT_EQ(RunForExitCode(load + quiet), 3);

  // No last-good left: a corrupt primary is a hard failure, exit 1.
  std::remove((model + ".lastgood").c_str());
  EXPECT_EQ(RunForExitCode(load + quiet), 1);
}

TEST(ToolsTest, MatchRejectsMissingInputs) {
  std::string command =
      std::string(LSD_MATCH_BIN) + " --mediated /nonexistent.dtd 2>/dev/null";
  EXPECT_NE(std::system(command.c_str()), 0);
  EXPECT_NE(std::system((std::string(LSD_MATCH_BIN) + " 2>/dev/null").c_str()),
            0);
}

TEST(ToolsTest, ServeReplaysARequestStream) {
  std::string dir = TempDir();
  std::string generate = std::string(LSD_GENERATE_BIN) +
                         " --domain real-estate-1 --out '" + dir +
                         "' --listings 40 --seed 7 2>/dev/null";
  ASSERT_EQ(std::system(generate.c_str()), 0);

  // Two healthy targets (one with a generous per-line deadline), plus one
  // request whose inputs do not exist — that request must fail without
  // taking the stream down.
  ASSERT_TRUE(WriteStringToFile(
                  dir + "/stream.txt",
                  "# id dtd xml [deadline_ms]\n"
                  "req-3 " + dir + "/source-3.dtd " + dir + "/source-3.xml\n"
                  "req-4 " + dir + "/source-4.dtd " + dir +
                      "/source-4.xml 60000\n"
                  "req-bad /nonexistent.dtd /nonexistent.xml\n")
                  .ok());

  std::string serve = std::string(LSD_SERVE_BIN) + " --mediated '" + dir +
                      "/mediated.dtd'";
  for (int s = 0; s < 3; ++s) {
    std::string base = dir + "/source-" + std::to_string(s);
    serve += " --train '" + base + ".dtd' '" + base + ".xml' '" + base +
             ".mapping'";
  }
  serve += " --requests '" + dir + "/stream.txt' --workers 2 --retries 1";
  serve += " --metrics-out '" + dir + "/metrics.json'";
  serve += " > '" + dir + "/outcomes.txt' 2>/dev/null";

  // req-bad fails, so the stream is imperfect: exit 2, never 0 or 1.
  EXPECT_EQ(RunForExitCode(serve), 2);

  auto outcomes = ReadFileToString(dir + "/outcomes.txt");
  ASSERT_TRUE(outcomes.ok());
  EXPECT_NE(outcomes->find("req-3 ok"), std::string::npos) << *outcomes;
  EXPECT_NE(outcomes->find("req-4 ok"), std::string::npos) << *outcomes;
  EXPECT_NE(outcomes->find("req-bad failed"), std::string::npos) << *outcomes;

  // The metrics snapshot carries the service counters.
  auto metrics = ReadFileToString(dir + "/metrics.json");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("\"service.admitted\""), std::string::npos);
  EXPECT_NE(metrics->find("\"service.request_micros\""), std::string::npos);
}

/// Strips the wall-clock latency field so network and replay outcome
/// lines can be byte-compared (everything else must match exactly).
std::string NormalizeLatency(std::string text) {
  const std::string kField = "latency_ms=";
  size_t at = 0;
  while ((at = text.find(kField, at)) != std::string::npos) {
    size_t digits = at + kField.size();
    size_t end = digits;
    while (end < text.size() && std::isdigit(static_cast<unsigned char>(text[end]))) {
      ++end;
    }
    text.replace(digits, end - digits, "X");
    at = digits;
  }
  return text;
}

TEST(ToolsTest, ServeListenModeMatchesFileReplayByteForByte) {
  std::string dir = TempDir();
  std::string generate = std::string(LSD_GENERATE_BIN) +
                         " --domain real-estate-1 --out '" + dir +
                         "' --listings 40 --seed 7 2>/dev/null";
  ASSERT_EQ(std::system(generate.c_str()), 0);

  // Two healthy requests, one with a generous per-line deadline that must
  // propagate over the wire the same way it does through the replay path.
  ASSERT_TRUE(WriteStringToFile(
                  dir + "/stream.txt",
                  "req-3 " + dir + "/source-3.dtd " + dir + "/source-3.xml\n"
                  "req-4 " + dir + "/source-4.dtd " + dir +
                      "/source-4.xml 60000\n")
                  .ok());

  std::string common = std::string(LSD_SERVE_BIN) + " --mediated '" + dir +
                       "/mediated.dtd'";
  for (int s = 0; s < 3; ++s) {
    std::string base = dir + "/source-" + std::to_string(s);
    common += " --train '" + base + ".dtd' '" + base + ".xml' '" + base +
              ".mapping'";
  }
  common += " --workers 2";

  // Reference: the same stream through file replay.
  std::string replay = common + " --requests '" + dir +
                       "/stream.txt' --print-mappings > '" + dir +
                       "/replay.txt' 2>/dev/null";
  ASSERT_EQ(RunForExitCode(replay), 0);

  // Network: lsd_serve --listen 0 in the background; the ephemeral-port
  // contract is the "listening on 127.0.0.1:<port>" line on stdout.
  std::string serve = common + " --listen 0 > '" + dir +
                      "/server_out.txt' 2>/dev/null & echo $! > '" + dir +
                      "/server.pid'";
  ASSERT_EQ(std::system(serve.c_str()), 0);
  int port = -1;
  for (int i = 0; i < 600 && port < 0; ++i) {
    auto out = ReadFileToString(dir + "/server_out.txt");
    if (out.ok()) {
      const std::string kBanner = "listening on 127.0.0.1:";
      size_t at = out->find(kBanner);
      if (at != std::string::npos &&
          out->find('\n', at) != std::string::npos) {
        port = std::atoi(out->c_str() + at + kBanner.size());
      }
    }
    if (port < 0) std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ASSERT_GT(port, 0) << "server never printed its port";

  std::string client = std::string(LSD_CLIENT_BIN) + " --port " +
                       std::to_string(port) + " --requests '" + dir +
                       "/stream.txt' --print-mappings > '" + dir +
                       "/net.txt' 2>/dev/null";
  EXPECT_EQ(RunForExitCode(client), 0);

  // Clean shutdown on SIGTERM.
  ASSERT_EQ(std::system(("kill -TERM $(cat '" + dir + "/server.pid')")
                            .c_str()),
            0);
  for (int i = 0; i < 100; ++i) {
    if (std::system(("kill -0 $(cat '" + dir +
                     "/server.pid') 2>/dev/null")
                        .c_str()) != 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // The byte-identity contract: outcome lines and mapping dumps match the
  // replay run exactly, modulo wall-clock latency.
  auto replay_text = ReadFileToString(dir + "/replay.txt");
  auto net_text = ReadFileToString(dir + "/net.txt");
  ASSERT_TRUE(replay_text.ok());
  ASSERT_TRUE(net_text.ok());
  EXPECT_FALSE(net_text->empty());
  EXPECT_EQ(NormalizeLatency(*replay_text), NormalizeLatency(*net_text));
}

TEST(ToolsTest, ServeRejectsMalformedStreamAndMissingFlags) {
  std::string dir = TempDir();
  ASSERT_TRUE(WriteStringToFile(dir + "/bad.txt", "only-two fields\n").ok());
  std::string command = std::string(LSD_SERVE_BIN) + " --mediated m.dtd" +
                        " --train a b c --requests '" + dir +
                        "/bad.txt' 2>/dev/null";
  EXPECT_EQ(RunForExitCode(command), 1);
  EXPECT_EQ(RunForExitCode(std::string(LSD_SERVE_BIN) + " 2>/dev/null"), 1);
}

TEST(ToolsTest, ServeCountsMalformedLinesAsDiagnosedImperfection) {
  std::string dir = TempDir();
  std::string generate = std::string(LSD_GENERATE_BIN) +
                         " --domain real-estate-1 --out '" + dir +
                         "' --listings 40 --seed 7 2>/dev/null";
  ASSERT_EQ(std::system(generate.c_str()), 0);

  // One healthy request between two malformed lines: the stream keeps
  // flowing, each malformed line gets a diagnostic naming its position,
  // and the damaged-stream count makes the run imperfect (exit 2).
  ASSERT_TRUE(WriteStringToFile(dir + "/stream.txt",
                                "only-two fields\n"
                                "req-3 " + dir + "/source-3.dtd " + dir +
                                    "/source-3.xml\n"
                                "req-x a.dtd a.xml not-a-deadline\n")
                  .ok());
  std::string serve = std::string(LSD_SERVE_BIN) + " --mediated '" + dir +
                      "/mediated.dtd'";
  for (int s = 0; s < 3; ++s) {
    std::string base = dir + "/source-" + std::to_string(s);
    serve += " --train '" + base + ".dtd' '" + base + ".xml' '" + base +
             ".mapping'";
  }
  serve += " --requests '" + dir + "/stream.txt'";
  serve += " > '" + dir + "/outcomes.txt' 2> '" + dir + "/err.txt'";
  EXPECT_EQ(RunForExitCode(serve), 2);

  auto outcomes = ReadFileToString(dir + "/outcomes.txt");
  ASSERT_TRUE(outcomes.ok());
  EXPECT_NE(outcomes->find("req-3 ok"), std::string::npos) << *outcomes;
  auto err = ReadFileToString(dir + "/err.txt");
  ASSERT_TRUE(err.ok());
  EXPECT_NE(err->find(":1: malformed line"), std::string::npos) << *err;
  EXPECT_NE(err->find(":3: malformed line"), std::string::npos) << *err;
  EXPECT_NE(err->find("malformed=2"), std::string::npos) << *err;
}

TEST(ToolsTest, ServeReloadDirectiveHotSwapsASavedModel) {
  std::string dir = TempDir();
  std::string generate = std::string(LSD_GENERATE_BIN) +
                         " --domain real-estate-1 --out '" + dir +
                         "' --listings 40 --seed 7 2>/dev/null";
  ASSERT_EQ(std::system(generate.c_str()), 0);

  // Save a model trained on exactly the sources lsd_serve will train on:
  // training is deterministic, so the loaded candidate is bit-identical
  // to the serving baseline and passes the byte-identical golden gate.
  std::string train_args;
  for (int s = 0; s < 3; ++s) {
    std::string base = dir + "/source-" + std::to_string(s);
    train_args += " --train '" + base + ".dtd' '" + base + ".xml' '" + base +
                  ".mapping'";
  }
  std::string same_model = dir + "/same.model";
  ASSERT_EQ(RunForExitCode(std::string(LSD_MATCH_BIN) + " --mediated '" +
                           dir + "/mediated.dtd'" + train_args +
                           " --target '" + dir + "/source-4.dtd' '" + dir +
                           "/source-4.xml' --save-model '" + same_model +
                           "' >/dev/null 2>/dev/null"),
            0);
  // And a *different* model (fewer training sources): its golden
  // fingerprints cannot match, so its RELOAD must be rejected.
  std::string other_model = dir + "/other.model";
  ASSERT_EQ(RunForExitCode(std::string(LSD_MATCH_BIN) + " --mediated '" +
                           dir + "/mediated.dtd' --train '" + dir +
                           "/source-0.dtd' '" + dir + "/source-0.xml' '" +
                           dir + "/source-0.mapping' --target '" + dir +
                           "/source-4.dtd' '" + dir +
                           "/source-4.xml' --save-model '" + other_model +
                           "' >/dev/null 2>/dev/null"),
            0);

  ASSERT_TRUE(WriteStringToFile(dir + "/golden.txt",
                                "golden-3 " + dir + "/source-3.dtd " + dir +
                                    "/source-3.xml\n")
                  .ok());
  ASSERT_TRUE(WriteStringToFile(
                  dir + "/stream.txt",
                  "req-before " + dir + "/source-4.dtd " + dir +
                      "/source-4.xml\n"
                  "RELOAD " + same_model + "\n"
                  "req-after " + dir + "/source-4.dtd " + dir +
                      "/source-4.xml\n")
                  .ok());

  std::string serve = std::string(LSD_SERVE_BIN) + " --mediated '" + dir +
                      "/mediated.dtd'" + train_args + " --requests '" + dir +
                      "/stream.txt' --golden '" + dir + "/golden.txt'" +
                      " --registry '" + dir + "/registry'";
  std::string run = serve + " > '" + dir + "/outcomes.txt' 2> '" + dir +
                    "/err.txt'";
  EXPECT_EQ(RunForExitCode(run), 0);
  auto outcomes = ReadFileToString(dir + "/outcomes.txt");
  ASSERT_TRUE(outcomes.ok());
  EXPECT_NE(outcomes->find("RELOAD " + same_model +
                           " swapped version=2 golden=1/1"),
            std::string::npos)
      << *outcomes;
  EXPECT_NE(outcomes->find("req-before ok"), std::string::npos) << *outcomes;
  EXPECT_NE(outcomes->find("req-after ok"), std::string::npos) << *outcomes;
  auto err = ReadFileToString(dir + "/err.txt");
  ASSERT_TRUE(err.ok());
  EXPECT_NE(err->find("reloads=1"), std::string::npos) << *err;
  EXPECT_NE(err->find("model-version=2"), std::string::npos) << *err;
  // The adopted candidate is durably recorded in the registry.
  EXPECT_TRUE(FileExists(dir + "/registry/registry.manifest"));
  EXPECT_TRUE(FileExists(dir + "/registry/v1.model"));

  // Second run: the divergent model's RELOAD is rejected out loud and the
  // stream still completes on the untouched serving model — but the run
  // is imperfect (exit 2).
  ASSERT_TRUE(WriteStringToFile(dir + "/stream.txt",
                                "RELOAD " + other_model + "\n"
                                "req-after " + dir + "/source-4.dtd " + dir +
                                    "/source-4.xml\n")
                  .ok());
  EXPECT_EQ(RunForExitCode(run), 2);
  outcomes = ReadFileToString(dir + "/outcomes.txt");
  ASSERT_TRUE(outcomes.ok());
  EXPECT_NE(outcomes->find("RELOAD " + other_model + " rejected:"),
            std::string::npos)
      << *outcomes;
  EXPECT_NE(outcomes->find("req-after ok"), std::string::npos) << *outcomes;
  err = ReadFileToString(dir + "/err.txt");
  ASSERT_TRUE(err.ok());
  EXPECT_NE(err->find("reload-rejections=1"), std::string::npos) << *err;
}

TEST(ToolsTest, GenerateRejectsUnknownDomain) {
  std::string dir = TempDir();
  std::string command = std::string(LSD_GENERATE_BIN) +
                        " --domain not-a-domain --out '" + dir +
                        "' 2>/dev/null";
  EXPECT_NE(std::system(command.c_str()), 0);
}

}  // namespace
}  // namespace lsd
