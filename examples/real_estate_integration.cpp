// Full real-estate data-integration walkthrough on the Real Estate I
// evaluation domain: generate five sources, train LSD on three of them
// with domain constraints installed, match the other two, inspect the
// proposals, then correct one mistake through user feedback — the
// end-to-end workflow of Sections 3, 4 and 6.
//
// Run: ./real_estate_integration

#include <cstdio>

#include "core/feedback.h"
#include "core/lsd_system.h"
#include "datagen/domains.h"
#include "eval/metrics.h"

int main() {
  using namespace lsd;

  // 1. A mediated real-estate schema plus five generated sources standing
  //    in for the paper's five WWW sites (see DESIGN.md substitutions).
  auto domain = MakeEvaluationDomain("real-estate-1", /*num_sources=*/5,
                                     /*num_listings=*/80, /*seed=*/7);
  if (!domain.ok()) {
    std::printf("error: %s\n", domain.status().ToString().c_str());
    return 1;
  }
  std::printf("Mediated schema (%zu tags):\n%s\n",
              domain->mediated.AllTags().size(),
              domain->mediated.ToString().c_str());

  // 2. Configure LSD: full learner roster, county recognizer active (this
  //    is a real-estate domain), domain constraints installed.
  LsdConfig config;
  config.use_county_recognizer = true;
  config.county_label = "COUNTY";
  LsdSystem lsd(domain->mediated, config, &domain->synonyms);
  for (auto& constraint : MakeDomainConstraints(*domain)) {
    std::printf("constraint: %s\n", constraint->Describe().c_str());
    lsd.AddConstraint(std::move(constraint));
  }

  // 3. Train on the first three sources with their user-given mappings.
  for (int s = 0; s < 3; ++s) {
    const GeneratedSource& gen = domain->sources[static_cast<size_t>(s)];
    std::printf("\ntraining on %s (%zu tags, %zu listings)\n",
                gen.source.name.c_str(), gen.source.schema.AllTags().size(),
                gen.source.listings.size());
    Status status = lsd.AddTrainingSource(gen.source, gen.gold);
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  Status status = lsd.Train();
  if (!status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
    return 1;
  }

  // 4. Match the two held-out sources and score against their gold
  //    mappings.
  for (size_t s = 3; s < 5; ++s) {
    const GeneratedSource& gen = domain->sources[s];
    auto result = lsd.MatchSource(gen.source);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    AccuracyBreakdown score = ScoreMapping(result->mapping, gen.gold);
    std::printf("\n=== %s ===\n", gen.source.name.c_str());
    std::printf("search: cost=%.2f expanded=%zu%s\n", result->search_cost,
                result->search_expanded,
                result->search_truncated ? " (truncated)" : "");
    for (const auto& [tag, label] : result->mapping.entries()) {
      const std::string* gold_label = gen.gold.Find(tag);
      bool correct = gold_label != nullptr && *gold_label == label;
      std::printf("  %-18s -> %-16s %s\n", tag.c_str(), label.c_str(),
                  correct ? "" : (" [gold: " + gen.gold.LabelOrOther(tag) + "]").c_str());
    }
    std::printf("matching accuracy: %.1f%% (%zu/%zu matchable tags)\n",
                100.0 * score.accuracy(), score.correct, score.matchable);
  }

  // 5. User feedback: correct the wrong labels on source 4 one at a time,
  //    as in Section 6.3, and watch the handler converge.
  const GeneratedSource& target = domain->sources[4];
  FeedbackSession session(&lsd, &target.source);
  status = session.Initialize();
  if (!status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
    return 1;
  }
  auto stats = session.RunWithOracle(target.gold);
  if (!stats.ok()) {
    std::printf("error: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nFeedback loop on %s: %zu corrections (of %zu tags) in %zu handler "
      "re-runs -> %s\n",
      target.source.name.c_str(), stats->corrections, stats->tags_total,
      stats->iterations,
      stats->reached_perfect ? "perfect matching" : "imperfect");
  return 0;
}
