// Course-catalog (Time Schedule domain) example: integrating university
// course listings with deeply nested schemas. Demonstrates the XML
// learner's structure tokens at work — SECTION vs COURSE-INFO instances
// share vocabulary and are separated by their nesting shape — and shows
// how per-tag predictions expose the system's confidence.
//
// Run: ./course_catalog

#include <algorithm>
#include <cstdio>

#include "core/lsd_system.h"
#include "datagen/domains.h"
#include "eval/metrics.h"

int main() {
  using namespace lsd;
  auto domain = MakeEvaluationDomain("time-schedule", /*num_sources=*/5,
                                     /*num_listings=*/100, /*seed=*/11);
  if (!domain.ok()) {
    std::printf("error: %s\n", domain.status().ToString().c_str());
    return 1;
  }

  LsdConfig config;
  LsdSystem lsd(domain->mediated, config, &domain->synonyms);
  for (auto& constraint : MakeDomainConstraints(*domain)) {
    lsd.AddConstraint(std::move(constraint));
  }
  for (int s = 0; s < 3; ++s) {
    const GeneratedSource& gen = domain->sources[static_cast<size_t>(s)];
    Status status = lsd.AddTrainingSource(gen.source, gen.gold);
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  Status status = lsd.Train();
  if (!status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("Learned per-label learner weights (stacking, Section 3.1):\n%s\n",
              lsd.meta_learner()
                  .WeightsToString(lsd.labels(), lsd.LearnerNames())
                  .c_str());

  const GeneratedSource& target = domain->sources[4];
  std::printf("Matching %s (schema below):\n%s\n", target.source.name.c_str(),
              target.source.schema.ToString().c_str());

  // Compare the complete system against a version without the XML
  // learner: nested tags are where the difference shows.
  auto full = lsd.MatchSource(target.source);
  if (!full.ok()) {
    std::printf("error: %s\n", full.status().ToString().c_str());
    return 1;
  }
  MatchOptions no_xml;
  no_xml.learners = {kNameMatcherName, kContentMatcherName, kNaiveBayesName};
  auto without_xml = lsd.MatchSource(target.source, no_xml);
  if (!without_xml.ok()) {
    std::printf("error: %s\n", without_xml.status().ToString().c_str());
    return 1;
  }

  std::printf("%-18s %-20s %-20s %s\n", "tag", "full system",
              "without XML learner", "gold");
  for (const auto& [tag, label] : full->mapping.entries()) {
    std::printf("%-18s %-20s %-20s %s\n", tag.c_str(), label.c_str(),
                without_xml->mapping.LabelOrOther(tag).c_str(),
                target.gold.LabelOrOther(tag).c_str());
  }
  std::printf("\naccuracy full: %.1f%%   without XML learner: %.1f%%\n",
              100.0 * MatchingAccuracy(full->mapping, target.gold),
              100.0 * MatchingAccuracy(without_xml->mapping, target.gold));

  // Show the converter's per-tag confidence for the three most uncertain
  // tags — the ones a user would be asked about first.
  std::printf("\nLowest-confidence tags (converter output):\n");
  std::vector<std::pair<double, size_t>> confidence;
  for (size_t t = 0; t < full->tags.size(); ++t) {
    const Prediction& p = full->tag_predictions[t];
    confidence.emplace_back(p.scores[static_cast<size_t>(p.Best())], t);
  }
  std::sort(confidence.begin(), confidence.end());
  for (size_t i = 0; i < 3 && i < confidence.size(); ++i) {
    size_t t = confidence[i].second;
    std::printf("  %-18s best=%s score=%.2f\n", full->tags[t].c_str(),
                lsd.labels().NameOf(full->tag_predictions[t].Best()).c_str(),
                confidence[i].first);
  }
  return 0;
}
