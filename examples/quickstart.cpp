// Quickstart: the paper's running example (Figures 2, 5 and 6).
//
// Builds a tiny real-estate mediated schema, trains LSD on two manually
// mapped sources (realestate.com and homeseekers.com), then asks it to
// match the schema of a third source (greathomes.com) it has never seen.
//
// Run: ./quickstart

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/lsd_system.h"
#include "xml/dtd_parser.h"
#include "xml/xml_parser.h"

namespace {

using lsd::DataSource;
using lsd::Dtd;
using lsd::LsdConfig;
using lsd::LsdSystem;
using lsd::Mapping;
using lsd::MatchResult;
using lsd::ParseDtd;
using lsd::ParseXml;
using lsd::Rng;
using lsd::Status;
using lsd::XmlDocument;

// Generates one house listing as XML text using the given tag names.
std::string MakeListing(const std::string& root, const std::string& addr_tag,
                        const std::string& desc_tag,
                        const std::string& phone_tag, Rng* rng) {
  static const std::vector<std::string> kCities = {
      "Miami, FL",   "Boston, MA",  "Seattle, WA",
      "Portland, OR", "Austin, TX", "Denver, CO"};
  static const std::vector<std::string> kDescriptions = {
      "Fantastic house in a great location",
      "Beautiful home, spacious yard, close to river",
      "Great location, nice area, must see",
      "Charming house with fantastic views",
      "Spacious home near great schools"};
  std::string phone = "(" + std::to_string(rng->UniformInt(200, 999)) + ") " +
                      std::to_string(rng->UniformInt(200, 999)) + " " +
                      std::to_string(rng->UniformInt(1000, 9999));
  return "<" + root + ">" +
         "<" + addr_tag + ">" + rng->Pick(kCities) + "</" + addr_tag + ">" +
         "<" + desc_tag + ">" + rng->Pick(kDescriptions) + "</" + desc_tag + ">" +
         "<" + phone_tag + ">" + phone + "</" + phone_tag + ">" +
         "</" + root + ">";
}

DataSource MakeSource(const std::string& name, const std::string& dtd_text,
                      const std::string& root, const std::string& addr_tag,
                      const std::string& desc_tag, const std::string& phone_tag,
                      uint64_t seed) {
  DataSource source;
  source.name = name;
  source.schema = ParseDtd(dtd_text).value();
  Rng rng(seed);
  for (int i = 0; i < 40; ++i) {
    source.listings.push_back(
        ParseXml(MakeListing(root, addr_tag, desc_tag, phone_tag, &rng))
            .value());
  }
  return source;
}

}  // namespace

int main() {
  // The mediated schema of Figure 2: ADDRESS, DESCRIPTION, AGENT-PHONE.
  Dtd mediated = ParseDtd(R"(
    <!ELEMENT HOUSE (ADDRESS, DESCRIPTION, AGENT-PHONE)>
    <!ELEMENT ADDRESS (#PCDATA)>
    <!ELEMENT DESCRIPTION (#PCDATA)>
    <!ELEMENT AGENT-PHONE (#PCDATA)>
  )").value();

  // Two training sources with different vocabularies (Figure 5.a).
  DataSource realestate = MakeSource(
      "realestate.com",
      R"(<!ELEMENT house-listing (location, comments, contact)>
         <!ELEMENT location (#PCDATA)>
         <!ELEMENT comments (#PCDATA)>
         <!ELEMENT contact (#PCDATA)>)",
      "house-listing", "location", "comments", "contact", 1);
  DataSource homeseekers = MakeSource(
      "homeseekers.com",
      R"(<!ELEMENT listing (house-addr, detailed-desc, phone)>
         <!ELEMENT house-addr (#PCDATA)>
         <!ELEMENT detailed-desc (#PCDATA)>
         <!ELEMENT phone (#PCDATA)>)",
      "listing", "house-addr", "detailed-desc", "phone", 2);

  // The user specifies the 1-1 mappings for the training sources
  // (Figure 5.b) — the only manual work in the whole pipeline.
  Mapping realestate_gold;
  realestate_gold.Set("house-listing", "HOUSE");
  realestate_gold.Set("location", "ADDRESS");
  realestate_gold.Set("comments", "DESCRIPTION");
  realestate_gold.Set("contact", "AGENT-PHONE");
  Mapping homeseekers_gold;
  homeseekers_gold.Set("listing", "HOUSE");
  homeseekers_gold.Set("house-addr", "ADDRESS");
  homeseekers_gold.Set("detailed-desc", "DESCRIPTION");
  homeseekers_gold.Set("phone", "AGENT-PHONE");

  // Train LSD (Section 3.1): creates training data for each base learner,
  // trains them, and learns per-label stacking weights by cross-validation.
  LsdConfig config;
  config.use_xml_learner = false;  // flat sources; keep the example minimal
  LsdSystem lsd(mediated, config);
  Status status = lsd.AddTrainingSource(realestate, realestate_gold);
  if (!status.ok()) { std::printf("error: %s\n", status.ToString().c_str()); return 1; }
  status = lsd.AddTrainingSource(homeseekers, homeseekers_gold);
  if (!status.ok()) { std::printf("error: %s\n", status.ToString().c_str()); return 1; }
  status = lsd.Train();
  if (!status.ok()) { std::printf("error: %s\n", status.ToString().c_str()); return 1; }

  std::printf("Trained learners:");
  for (const std::string& name : lsd.LearnerNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\nMeta-learner weights (per label):\n%s\n",
              lsd.meta_learner()
                  .WeightsToString(lsd.labels(), lsd.LearnerNames())
                  .c_str());

  // A new source LSD has never seen (Figure 6).
  DataSource greathomes = MakeSource(
      "greathomes.com",
      R"(<!ELEMENT home (area, extra-info, agent-phone)>
         <!ELEMENT area (#PCDATA)>
         <!ELEMENT extra-info (#PCDATA)>
         <!ELEMENT agent-phone (#PCDATA)>)",
      "home", "area", "extra-info", "agent-phone", 3);

  auto result = lsd.MatchSource(greathomes);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("Predicted mapping for greathomes.com:\n%s\n",
              result->mapping.ToString().c_str());
  for (size_t t = 0; t < result->tags.size(); ++t) {
    std::printf("  %-12s %s\n", result->tags[t].c_str(),
                result->tag_predictions[t].ToString(lsd.labels()).c_str());
  }
  return 0;
}
