// Extensibility demo: plugging a new base learner into LSD.
//
// The paper's architecture promises that "new learners can be added as
// needed" (Section 1). This example defines a ZipRecognizer — a
// narrow-expertise recognizer in the spirit of the county-name recognizer
// — registers it alongside the format learner, and shows the meta-learner
// assigning it weight for the ZIP label.
//
// Because `LsdSystem`'s roster is config-driven, the cleanest way to add a
// bespoke learner is to train and combine by hand, which is what the
// lower-level API shown here does: base learners -> cross-validation ->
// meta-learner -> prediction converter.
//
// Run: ./custom_learner

#include <cstdio>
#include <memory>

#include "common/strings.h"
#include "datagen/domains.h"
#include "eval/metrics.h"
#include "learners/content_matcher.h"
#include "learners/format_learner.h"
#include "learners/name_matcher.h"
#include "learners/naive_bayes_learner.h"
#include "ml/cross_validation.h"
#include "ml/meta_learner.h"
#include "ml/prediction_converter.h"
#include "schema/extraction.h"

namespace {

using namespace lsd;

/// A recognizer that votes for the ZIP label when content looks like a
/// 5-digit US zip code.
class ZipRecognizer : public BaseLearner {
 public:
  explicit ZipRecognizer(std::string target_label = "ZIP")
      : target_label_(std::move(target_label)) {}

  std::string name() const override { return "zip-recognizer"; }

  Status Train(const std::vector<TrainingExample>&,
               const LabelSpace& labels) override {
    n_labels_ = labels.size();
    target_ = labels.IndexOf(target_label_);
    return Status::OK();
  }

  Prediction Predict(const Instance& instance) const override {
    Prediction out = Prediction::Uniform(n_labels_);
    if (target_ < 0) return out;
    std::string_view content = instance.content;
    bool looks_like_zip = content.size() == 5 && IsAllDigits(content);
    double target_mass = looks_like_zip ? 0.9 : 0.0;
    double rest = (1.0 - target_mass) / static_cast<double>(n_labels_ - 1);
    for (size_t c = 0; c < n_labels_; ++c) {
      out.scores[c] = static_cast<int>(c) == target_ ? target_mass : rest;
    }
    out.Normalize();
    return out;
  }

  std::unique_ptr<BaseLearner> CloneUntrained() const override {
    return std::make_unique<ZipRecognizer>(target_label_);
  }

 private:
  std::string target_label_;
  size_t n_labels_ = 0;
  int target_ = -1;
};

}  // namespace

int main() {
  auto domain = MakeEvaluationDomain("real-estate-1", 5, 60, 7);
  if (!domain.ok()) {
    std::printf("error: %s\n", domain.status().ToString().c_str());
    return 1;
  }
  LabelSpace labels(domain->mediated.AllTags());

  // Assemble a custom ensemble: standard learners plus the new recognizer
  // and the Section 7 format learner.
  std::vector<std::unique_ptr<BaseLearner>> learners;
  learners.push_back(std::make_unique<NameMatcher>());
  learners.push_back(std::make_unique<ContentMatcher>());
  learners.push_back(std::make_unique<NaiveBayesLearner>());
  learners.push_back(std::make_unique<FormatLearner>());
  learners.push_back(std::make_unique<ZipRecognizer>());

  // Training data from three sources (Section 3.1 steps 2-3).
  std::vector<TrainingExample> examples;
  std::vector<int> groups;
  int group = 0;
  for (int s = 0; s < 3; ++s) {
    const GeneratedSource& gen = domain->sources[static_cast<size_t>(s)];
    ExtractionOptions options;
    options.synonyms = &domain->synonyms;
    auto columns = ExtractColumns(gen.source, options);
    if (!columns.ok()) return 1;
    for (const Column& column : *columns) {
      int label = labels.IndexOf(gen.gold.LabelOrOther(column.tag));
      for (const Instance& instance : column.instances) {
        examples.push_back({instance, label});
        groups.push_back(group);
      }
      ++group;
    }
  }
  std::printf("training examples: %zu\n", examples.size());

  // Steps 4-5: train base learners, collect stacked CV predictions, train
  // the meta-learner.
  CrossValidationOptions cv_options;
  cv_options.group_ids = groups;
  std::vector<std::vector<Prediction>> cv;
  std::vector<int> truth;
  for (const TrainingExample& e : examples) truth.push_back(e.label);
  for (auto& learner : learners) {
    auto fold_preds = CrossValidatePredictions(*learner, examples, labels,
                                               cv_options);
    if (!fold_preds.ok()) {
      std::printf("error: %s\n", fold_preds.status().ToString().c_str());
      return 1;
    }
    cv.push_back(std::move(*fold_preds));
    Status status = learner->Train(examples, labels);
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  MetaLearner meta;
  Status status = meta.Train(cv, truth, labels.size());
  if (!status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
    return 1;
  }

  int zip_label = labels.IndexOf("ZIP");
  std::printf("\nmeta-learner weights for label ZIP:\n");
  for (size_t l = 0; l < learners.size(); ++l) {
    std::printf("  %-16s %.3f\n", learners[l]->name().c_str(),
                meta.WeightOf(zip_label, l));
  }

  // Matching phase on a held-out source, by hand: per-instance base
  // predictions -> meta combination -> converter -> argmax.
  const GeneratedSource& target = domain->sources[4];
  ExtractionOptions options;
  options.synonyms = &domain->synonyms;
  auto columns = ExtractColumns(target.source, options);
  if (!columns.ok()) return 1;
  PredictionConverter converter;
  Mapping mapping;
  for (const Column& column : *columns) {
    if (column.instances.empty()) continue;
    std::vector<Prediction> instance_preds;
    for (const Instance& instance : column.instances) {
      std::vector<Prediction> base;
      for (const auto& learner : learners) base.push_back(learner->Predict(instance));
      auto combined = meta.Combine(base);
      if (!combined.ok()) return 1;
      instance_preds.push_back(std::move(*combined));
    }
    auto tag_pred = converter.Convert(instance_preds);
    if (!tag_pred.ok()) return 1;
    mapping.Set(column.tag, labels.NameOf(tag_pred->Best()));
  }
  std::printf("\npredicted mapping for %s:\n%s", target.source.name.c_str(),
              mapping.ToString().c_str());
  std::printf("accuracy: %.1f%%\n",
              100.0 * MatchingAccuracy(mapping, target.gold));
  return 0;
}
