#!/bin/bash
# Runs every paper bench; scale flags chosen so the whole suite fits a
# single-core budget (the binaries default to a larger protocol).
cd /root/repo
{
  echo "=== table3_domains ===";        build/bench/table3_domains; echo
  echo "=== fig8a_accuracy ===";        build/bench/fig8a_accuracy --samples=1 --listings=80; echo
  echo "=== fig8b_data_sensitivity ==="; build/bench/fig8b_data_sensitivity --samples=1; echo
  echo "=== fig8c_data_sensitivity ==="; build/bench/fig8c_data_sensitivity --samples=1; echo
  echo "=== fig9a_lesion ===";          build/bench/fig9a_lesion --samples=1 --listings=80; echo
  echo "=== fig9b_schema_vs_data ===";  build/bench/fig9b_schema_vs_data --samples=1 --listings=80; echo
  echo "=== sec63_feedback ===";        build/bench/sec63_feedback --runs=3 --listings=80; echo
  echo "=== ablation_stacking ===";     build/bench/ablation_stacking --listings=60; echo
  echo "=== ablation_converter ===";    build/bench/ablation_converter --listings=60; echo
  echo "=== micro_components ===";      build/bench/micro_components --benchmark_min_time=0.2; echo
  echo "=== profile_probe ===";         build/bench/profile_probe; echo
  echo "=== bench_parallel ===";        build/bench/bench_parallel --listings=80 --out=/root/repo/BENCH_parallel.json; echo
  echo "=== bench_service ===";         build/bench/bench_service --out=/root/repo/BENCH_service.json; echo
  echo "=== bench_net ===";             build/bench/bench_net --out=/root/repo/BENCH_net.json; echo
  echo "=== DONE ==="
} 2>&1 | grep -v "WARNING conda" > /root/repo/bench_output.txt
